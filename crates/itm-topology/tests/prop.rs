//! Property-based tests: the generator's invariants hold for every seed
//! and across a range of configurations.

use itm_topology::{generate, AsClass, TopologyConfig};
use itm_types::geo::WorldConfig;
use proptest::prelude::*;

fn arb_config() -> impl Strategy<Value = TopologyConfig> {
    (
        2usize..6,   // tier1
        2usize..12,  // transit
        5usize..40,  // eyeball
        0usize..30,  // stub
        1usize..4,   // hypergiant
        0usize..3,   // cloud
        0.0f64..1.0, // offnet reach
        0.2f64..2.0, // peering intensity
    )
        .prop_map(
            |(t1, tr, eye, stub, hg, cloud, reach, intensity)| TopologyConfig {
                world: WorldConfig {
                    n_countries: 4,
                    n_cities: 16,
                    population_skew: 1.0,
                },
                n_tier1: t1,
                n_transit: tr,
                n_eyeball: eye,
                n_stub: stub,
                n_hypergiant: hg,
                n_cloud: cloud,
                max_facilities_per_city: 2,
                ixp_city_fraction: 0.3,
                mean_providers: 1.5,
                peering_intensity: intensity,
                offnet_reach: reach,
                eyeball_mean_prefixes: 3.0,
                stub_mean_prefixes: 1.0,
                content_mean_prefixes: 4.0,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn invariants_hold_for_all_configs_and_seeds(cfg in arb_config(), seed in any::<u64>()) {
        let topo = generate(&cfg, seed).unwrap();
        prop_assert_eq!(topo.check_invariants(), Ok(()));
        prop_assert_eq!(topo.n_ases(), cfg.total_ases());
    }

    #[test]
    fn offnet_reach_scales_deployments(seed in 0u64..50) {
        let mut lo_cfg = TopologyConfig::small();
        lo_cfg.offnet_reach = 0.1;
        let mut hi_cfg = TopologyConfig::small();
        hi_cfg.offnet_reach = 0.9;
        let lo = generate(&lo_cfg, seed).unwrap();
        let hi = generate(&hi_cfg, seed).unwrap();
        prop_assert!(hi.offnets.len() >= lo.offnets.len());
    }

    #[test]
    fn peering_intensity_scales_link_count(seed in 0u64..50) {
        let mut lo_cfg = TopologyConfig::small();
        lo_cfg.peering_intensity = 0.2;
        let mut hi_cfg = TopologyConfig::small();
        hi_cfg.peering_intensity = 1.5;
        let lo = generate(&lo_cfg, seed).unwrap();
        let hi = generate(&hi_cfg, seed).unwrap();
        let peers = |t: &itm_topology::Topology| t.count_links(|l| l.is_peering());
        prop_assert!(peers(&hi) > peers(&lo));
    }

    #[test]
    fn determinism_across_configs(cfg in arb_config(), seed in any::<u64>()) {
        let a = generate(&cfg, seed).unwrap();
        let b = generate(&cfg, seed).unwrap();
        prop_assert_eq!(a.links.len(), b.links.len());
        prop_assert_eq!(a.prefixes.len(), b.prefixes.len());
        prop_assert_eq!(a.offnets.len(), b.offnets.len());
        for (x, y) in a.links.iter().zip(&b.links) {
            prop_assert_eq!(x, y);
        }
    }

    #[test]
    fn cone_sizes_are_sane(cfg in arb_config(), seed in any::<u64>()) {
        let topo = generate(&cfg, seed).unwrap();
        let n = topo.n_ases();
        for a in &topo.ases {
            let cone = topo.cones.cone_size(a.asn);
            prop_assert!(cone >= 1 && cone <= n);
            // Stubs never sell transit.
            if a.class == AsClass::Stub {
                prop_assert_eq!(topo.cones.direct_customers(a.asn).len(), 0);
            }
        }
        // Some tier-1 must have a big cone (it roots the hierarchy).
        let max_t1_cone = topo
            .ases_of_class(AsClass::Tier1)
            .map(|a| topo.cones.cone_size(a.asn))
            .max()
            .unwrap();
        prop_assert!(max_t1_cone > n / 4, "largest tier-1 cone {} of {}", max_t1_cone, n);
    }
}
