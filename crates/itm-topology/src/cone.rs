//! Customer-cone computation.
//!
//! An AS's customer cone is the set of ASes reachable by walking only
//! provider→customer edges (itself included). Cone size is the classic
//! proxy for transit importance (Luckie et al. \[41\]) and one of the
//! features §3.3.3 proposes feeding the peering recommender.

use crate::link::{AsRel, Link};
use itm_types::Asn;

/// Customer cones for every AS, plus the provider/customer adjacency used
/// to compute them.
#[derive(Debug, Clone)]
pub struct CustomerCones {
    /// customers[asn] = direct customers of asn.
    customers: Vec<Vec<Asn>>,
    /// cone_size[asn] = |customer cone of asn| (including itself).
    cone_size: Vec<usize>,
}

impl CustomerCones {
    /// Compute cones over the ground-truth link set for `n_ases` dense ASNs.
    ///
    /// The provider graph is a DAG by construction in the generator (a
    /// customer's index class is always "below" its provider's), but this
    /// routine tolerates arbitrary graphs by memoizing with a visited set
    /// per root (cost O(V·(V+E)) worst case; fine at our scales because
    /// cones are shallow).
    pub fn compute(n_ases: usize, links: &[Link]) -> CustomerCones {
        let mut customers: Vec<Vec<Asn>> = vec![Vec::new(); n_ases];
        for l in links {
            if l.rel == AsRel::CustomerToProvider {
                // a = customer, b = provider
                customers[l.b.index()].push(l.a);
            }
        }
        for c in &mut customers {
            c.sort_unstable();
            c.dedup();
        }

        let mut cone_size = vec![0usize; n_ases];
        let mut visited = vec![u32::MAX; n_ases];
        for (root, size) in cone_size.iter_mut().enumerate() {
            // Iterative DFS from root over customer edges.
            let mut stack = vec![root];
            let mut count = 0usize;
            while let Some(u) = stack.pop() {
                if visited[u] == root as u32 {
                    continue;
                }
                visited[u] = root as u32;
                count += 1;
                for &c in &customers[u] {
                    if visited[c.index()] != root as u32 {
                        stack.push(c.index());
                    }
                }
            }
            *size = count;
        }

        CustomerCones {
            customers,
            cone_size,
        }
    }

    /// Direct customers of `asn`.
    pub fn direct_customers(&self, asn: Asn) -> &[Asn] {
        &self.customers[asn.index()]
    }

    /// Size of `asn`'s customer cone (including itself; a stub has cone 1).
    pub fn cone_size(&self, asn: Asn) -> usize {
        self.cone_size[asn.index()]
    }

    /// The full cone membership of `asn`, computed on demand.
    pub fn cone_members(&self, asn: Asn) -> Vec<Asn> {
        let mut seen = vec![false; self.customers.len()];
        let mut stack = vec![asn.index()];
        let mut out = Vec::new();
        while let Some(u) = stack.pop() {
            if seen[u] {
                continue;
            }
            seen[u] = true;
            out.push(Asn(u as u32));
            for &c in &self.customers[u] {
                if !seen[c.index()] {
                    stack.push(c.index());
                }
            }
        }
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::Link;

    /// 0 is provider of 1 and 2; 1 is provider of 3; 2 and 3 peer.
    fn sample() -> Vec<Link> {
        vec![
            Link::transit(Asn(1), Asn(0)),
            Link::transit(Asn(2), Asn(0)),
            Link::transit(Asn(3), Asn(1)),
            Link::peering(Asn(2), Asn(3), crate::link::LinkClass::Transit),
        ]
    }

    #[test]
    fn cone_sizes() {
        let c = CustomerCones::compute(4, &sample());
        assert_eq!(c.cone_size(Asn(0)), 4);
        assert_eq!(c.cone_size(Asn(1)), 2);
        assert_eq!(c.cone_size(Asn(2)), 1);
        assert_eq!(c.cone_size(Asn(3)), 1);
    }

    #[test]
    fn peering_does_not_extend_cones() {
        // 2–3 peer link must not put 3 into 2's cone.
        let c = CustomerCones::compute(4, &sample());
        assert_eq!(c.cone_members(Asn(2)), vec![Asn(2)]);
    }

    #[test]
    fn members_and_direct_customers() {
        let c = CustomerCones::compute(4, &sample());
        assert_eq!(c.cone_members(Asn(0)), vec![Asn(0), Asn(1), Asn(2), Asn(3)]);
        assert_eq!(c.direct_customers(Asn(0)), &[Asn(1), Asn(2)]);
        assert_eq!(c.direct_customers(Asn(3)), &[] as &[Asn]);
    }

    #[test]
    fn multihoming_counts_once() {
        // 2 buys from both 0 and 1; 0 is provider of 1.
        let links = vec![
            Link::transit(Asn(1), Asn(0)),
            Link::transit(Asn(2), Asn(0)),
            Link::transit(Asn(2), Asn(1)),
        ];
        let c = CustomerCones::compute(3, &links);
        assert_eq!(c.cone_size(Asn(0)), 3); // not 4
    }
}
