//! Autonomous-system descriptions.

use itm_types::{Asn, Country};
use serde::{Deserialize, Serialize};

/// The role an AS plays in the synthetic Internet.
///
/// Classes drive every structural decision: how many cities an AS reaches,
/// whom it buys transit from, how eagerly it peers, how many prefixes and
/// users it has, and whether it operates serving infrastructure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AsClass {
    /// Transit-free backbone; full mesh with other tier-1s, sells transit.
    Tier1,
    /// Regional/national transit provider; buys from tier-1s, sells below.
    Transit,
    /// Access/eyeball ISP: hosts users, buys transit, peers at IXPs.
    Eyeball,
    /// Small multihomed stub (enterprise, university, small hoster).
    Stub,
    /// Hypergiant content provider (the "handful of large providers" of
    /// §1): operates its own services, on-net PoPs, and off-net caches.
    Hypergiant,
    /// Public cloud provider hosting third-party services (§1: "most other
    /// large services are hosted by one of a few large cloud providers").
    Cloud,
}

impl AsClass {
    /// All classes, in a stable order.
    pub const ALL: [AsClass; 6] = [
        AsClass::Tier1,
        AsClass::Transit,
        AsClass::Eyeball,
        AsClass::Stub,
        AsClass::Hypergiant,
        AsClass::Cloud,
    ];

    /// Short label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            AsClass::Tier1 => "tier1",
            AsClass::Transit => "transit",
            AsClass::Eyeball => "eyeball",
            AsClass::Stub => "stub",
            AsClass::Hypergiant => "hypergiant",
            AsClass::Cloud => "cloud",
        }
    }

    /// Whether this class operates serving infrastructure for popular
    /// services (its own, or customers' in the cloud case).
    pub fn is_content(self) -> bool {
        matches!(self, AsClass::Hypergiant | AsClass::Cloud)
    }

    /// Whether this class terminates end users.
    pub fn is_eyeball(self) -> bool {
        matches!(self, AsClass::Eyeball)
    }
}

/// The openness of an AS's peering policy, as networks advertise in
/// PeeringDB. §3.3.3 proposes exactly these attributes as features for
/// predicting which co-located networks interconnect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum PeeringPolicy {
    /// Peers with anyone present at a shared facility/IXP.
    Open,
    /// Peers when there is mutual benefit (traffic volume, ratio).
    Selective,
    /// Peers only in exceptional cases (typical of large transit sellers).
    Restrictive,
}

impl PeeringPolicy {
    /// Baseline probability of agreeing to peer with a co-located network.
    pub fn base_propensity(self) -> f64 {
        match self {
            PeeringPolicy::Open => 0.9,
            PeeringPolicy::Selective => 0.35,
            PeeringPolicy::Restrictive => 0.04,
        }
    }
}

/// Everything the substrate knows about one AS.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AsInfo {
    /// The AS number (dense, usable as an index).
    pub asn: Asn,
    /// Structural class.
    pub class: AsClass,
    /// Country where the AS is registered / headquartered.
    pub home_country: Country,
    /// City ids (into the world's city table) where the AS has a PoP.
    pub cities: Vec<u32>,
    /// Advertised peering policy.
    pub policy: PeeringPolicy,
    /// Relative size within its class (1.0 = median); scales prefix and
    /// user allocations and peering attractiveness.
    pub size_factor: f64,
}

impl AsInfo {
    /// Whether the AS has a PoP in `city`.
    pub fn present_in(&self, city: u32) -> bool {
        self.cities.contains(&city)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_labels_are_unique() {
        let labels: std::collections::HashSet<_> = AsClass::ALL.iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), AsClass::ALL.len());
    }

    #[test]
    fn content_and_eyeball_partition() {
        assert!(AsClass::Hypergiant.is_content());
        assert!(AsClass::Cloud.is_content());
        assert!(!AsClass::Eyeball.is_content());
        assert!(AsClass::Eyeball.is_eyeball());
        assert!(!AsClass::Cloud.is_eyeball());
    }

    #[test]
    fn policy_propensities_are_ordered() {
        assert!(PeeringPolicy::Open.base_propensity() > PeeringPolicy::Selective.base_propensity());
        assert!(
            PeeringPolicy::Selective.base_propensity()
                > PeeringPolicy::Restrictive.base_propensity()
        );
    }

    #[test]
    fn present_in_checks_city_list() {
        let a = AsInfo {
            asn: Asn(1),
            class: AsClass::Stub,
            home_country: Country(0),
            cities: vec![3, 9],
            policy: PeeringPolicy::Selective,
            size_factor: 1.0,
        };
        assert!(a.present_in(3));
        assert!(!a.present_in(4));
    }
}
