//! The assembled topology: entities plus derived indices and invariants.

use crate::asinfo::{AsClass, AsInfo};
use crate::cone::CustomerCones;
use crate::config::TopologyConfig;
use crate::facility::{Facility, Ixp};
use crate::link::{AsRel, Link, LinkClass, LinkId};
use crate::offnet::OffnetTable;
use crate::prefix::{PrefixKind, PrefixTable};
use itm_types::geo::World;
use itm_types::{Asn, GeoPoint};
use std::collections::BTreeSet;

/// A neighbor relationship seen from one AS's perspective.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NeighborKind {
    /// The neighbor pays us (we are its provider).
    Customer,
    /// We pay the neighbor (it is our provider).
    Provider,
    /// Settlement-free peer.
    Peer,
}

/// One entry in an AS's adjacency list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Neighbor {
    /// The adjacent AS.
    pub asn: Asn,
    /// Our relationship to it.
    pub kind: NeighborKind,
    /// Index of the underlying link.
    pub link: LinkId,
}

/// A complete synthetic Internet.
///
/// Built by [`crate::generate`]; immutable afterwards. All downstream
/// systems (routing, traffic, DNS, TLS, measurement) borrow it.
#[derive(Debug, Clone)]
pub struct Topology {
    /// The configuration that produced this Internet.
    pub config: TopologyConfig,
    /// The seed that produced this Internet (for provenance in reports).
    pub seed: u64,
    /// Geography.
    pub world: World,
    /// All ASes, indexed by dense ASN.
    pub ases: Vec<AsInfo>,
    /// Ground-truth link set.
    pub links: Vec<Link>,
    /// Colocation facilities.
    pub facilities: Vec<Facility>,
    /// Internet exchange points.
    pub ixps: Vec<Ixp>,
    /// Routed /24 table.
    pub prefixes: PrefixTable,
    /// Hypergiant off-net deployments.
    pub offnets: OffnetTable,
    /// Customer cones (computed at build time).
    pub cones: CustomerCones,
    /// adjacency[asn] — neighbors with perspective-relative relationship.
    adjacency: Vec<Vec<Neighbor>>,
    /// Links currently flapped down (canonical endpoint pairs). Empty on
    /// every generated topology; the epoch engine toggles entries between
    /// map builds. Downed links stay in [`Topology::links`] (they still
    /// exist contractually) but are excluded from routing views.
    links_down: BTreeSet<(Asn, Asn)>,
}

impl Topology {
    /// Assemble a topology from parts, rebuilding all derived indices
    /// (adjacency, customer cones). Used by the generator and by the
    /// evolution machinery that mutates an existing Internet.
    #[allow(clippy::too_many_arguments)]
    pub fn from_parts(
        config: TopologyConfig,
        seed: u64,
        world: World,
        ases: Vec<AsInfo>,
        links: Vec<Link>,
        facilities: Vec<Facility>,
        ixps: Vec<Ixp>,
        prefixes: PrefixTable,
        offnets: OffnetTable,
    ) -> Topology {
        let n = ases.len();
        let mut adjacency: Vec<Vec<Neighbor>> = vec![Vec::new(); n];
        for (i, l) in links.iter().enumerate() {
            let id = LinkId(i as u32);
            match l.rel {
                AsRel::CustomerToProvider => {
                    adjacency[l.a.index()].push(Neighbor {
                        asn: l.b,
                        kind: NeighborKind::Provider,
                        link: id,
                    });
                    adjacency[l.b.index()].push(Neighbor {
                        asn: l.a,
                        kind: NeighborKind::Customer,
                        link: id,
                    });
                }
                AsRel::PeerToPeer => {
                    adjacency[l.a.index()].push(Neighbor {
                        asn: l.b,
                        kind: NeighborKind::Peer,
                        link: id,
                    });
                    adjacency[l.b.index()].push(Neighbor {
                        asn: l.a,
                        kind: NeighborKind::Peer,
                        link: id,
                    });
                }
            }
        }
        // Deterministic neighbor order (by ASN) so route tiebreaks are stable.
        for adj in &mut adjacency {
            adj.sort_by_key(|n| n.asn);
        }
        let cones = CustomerCones::compute(n, &links);
        Topology {
            config,
            seed,
            world,
            ases,
            links,
            facilities,
            ixps,
            prefixes,
            offnets,
            cones,
            adjacency,
            links_down: BTreeSet::new(),
        }
    }

    /// Whether the link with canonical key `(a, b)` is currently flapped
    /// down. Always false on a freshly generated topology.
    #[inline]
    pub fn is_link_down(&self, key: (Asn, Asn)) -> bool {
        !self.links_down.is_empty() && self.links_down.contains(&key)
    }

    /// Toggle a link's flap state; returns true when the link is now down.
    /// `key` must be in canonical (low ASN first) order, as produced by
    /// [`Link::key`].
    pub fn toggle_link_down(&mut self, key: (Asn, Asn)) -> bool {
        if self.links_down.remove(&key) {
            false
        } else {
            self.links_down.insert(key);
            true
        }
    }

    /// The currently downed links (canonical endpoint pairs).
    pub fn links_down(&self) -> &BTreeSet<(Asn, Asn)> {
        &self.links_down
    }

    /// Number of ASes.
    pub fn n_ases(&self) -> usize {
        self.ases.len()
    }

    /// Info for one AS.
    pub fn as_info(&self, asn: Asn) -> &AsInfo {
        &self.ases[asn.index()]
    }

    /// Neighbors of `asn`, sorted by neighbor ASN.
    pub fn neighbors(&self, asn: Asn) -> &[Neighbor] {
        &self.adjacency[asn.index()]
    }

    /// All ASes of a class, in ASN order.
    pub fn ases_of_class(&self, class: AsClass) -> impl Iterator<Item = &AsInfo> {
        self.ases.iter().filter(move |a| a.class == class)
    }

    /// The hypergiant ASes.
    pub fn hypergiants(&self) -> Vec<Asn> {
        self.ases_of_class(AsClass::Hypergiant)
            .map(|a| a.asn)
            .collect()
    }

    /// The cloud ASes.
    pub fn clouds(&self) -> Vec<Asn> {
        self.ases_of_class(AsClass::Cloud).map(|a| a.asn).collect()
    }

    /// Geographic location of a city id.
    pub fn city_location(&self, city: u32) -> GeoPoint {
        self.world.cities[city as usize].location
    }

    /// Representative location for an AS: its first (primary) city.
    pub fn as_location(&self, asn: Asn) -> GeoPoint {
        let a = self.as_info(asn);
        // itm-lint: allow(P001): check_invariants rejects city-less ASes at generation time
        self.city_location(*a.cities.first().expect("AS has at least one city"))
    }

    /// Whether a ground-truth link exists between `x` and `y`.
    pub fn has_link(&self, x: Asn, y: Asn) -> bool {
        self.adjacency[x.index()].iter().any(|n| n.asn == y)
    }

    /// Count links by class predicate.
    pub fn count_links(&self, pred: impl Fn(&Link) -> bool) -> usize {
        self.links.iter().filter(|l| pred(l)).count()
    }

    /// Structural invariants every generated Internet must satisfy.
    /// Called by the generator in debug builds and by integration tests.
    pub fn check_invariants(&self) -> Result<(), String> {
        let n = self.n_ases();
        // 1. Dense ASNs.
        for (i, a) in self.ases.iter().enumerate() {
            if a.asn.index() != i {
                return Err(format!("AS at index {i} has asn {}", a.asn));
            }
            if a.cities.is_empty() {
                return Err(format!("{} has no cities", a.asn));
            }
        }
        // 2. Tier-1 clique, and tier-1s have no providers.
        let tier1: Vec<Asn> = self.ases_of_class(AsClass::Tier1).map(|a| a.asn).collect();
        for &t in &tier1 {
            for &u in &tier1 {
                if t < u && !self.has_link(t, u) {
                    return Err(format!("tier-1s {t} and {u} not connected"));
                }
            }
            if self
                .neighbors(t)
                .iter()
                .any(|nb| nb.kind == NeighborKind::Provider)
            {
                return Err(format!("tier-1 {t} has a provider"));
            }
        }
        // 3. Everyone else has at least one provider (no partitions at the
        //    BGP level) unless they are tier-1.
        for a in &self.ases {
            if a.class != AsClass::Tier1 {
                let has_provider = self
                    .neighbors(a.asn)
                    .iter()
                    .any(|nb| nb.kind == NeighborKind::Provider);
                if !has_provider {
                    return Err(format!("{} ({}) has no provider", a.asn, a.class.label()));
                }
            }
        }
        // 4. Links reference valid ASes and peer links are canonical.
        for l in &self.links {
            if l.a.index() >= n || l.b.index() >= n {
                return Err(format!("link {l:?} references unknown AS"));
            }
            if l.a == l.b {
                return Err(format!("self-link at {}", l.a));
            }
            if l.rel == AsRel::PeerToPeer && l.a > l.b {
                return Err(format!("non-canonical peer link {l:?}"));
            }
            match l.class {
                LinkClass::PublicPeering(ix) => {
                    if ix.index() >= self.ixps.len() {
                        return Err(format!("link references unknown IXP {ix}"));
                    }
                }
                LinkClass::PrivatePeering(f) => {
                    if f.index() >= self.facilities.len() {
                        return Err(format!("link references unknown facility {f}"));
                    }
                }
                LinkClass::Transit => {}
            }
        }
        // 5. No duplicate adjacencies.
        let mut keys: Vec<(Asn, Asn)> = self.links.iter().map(|l| l.key()).collect();
        keys.sort_unstable();
        let before = keys.len();
        keys.dedup();
        if keys.len() != before {
            return Err("duplicate links present".into());
        }
        // 6. Prefix owners valid; off-net prefixes are OffnetCache kind.
        for r in self.prefixes.iter() {
            if r.owner.index() >= n {
                return Err(format!("prefix {} owned by unknown AS", r.net));
            }
        }
        for d in self.offnets.iter() {
            let r = self.prefixes.get(d.prefix);
            if r.kind != PrefixKind::OffnetCache {
                return Err(format!(
                    "offnet deployment {:?} points at non-offnet prefix {}",
                    d, r.net
                ));
            }
            if r.owner != d.host {
                return Err(format!(
                    "offnet prefix {} owned by {} but deployment says host {}",
                    r.net, r.owner, d.host
                ));
            }
            if self.as_info(d.hypergiant).class != AsClass::Hypergiant {
                return Err(format!("{} is not a hypergiant", d.hypergiant));
            }
        }
        // 7. Every user-access prefix belongs to an eyeball or stub.
        for r in self.prefixes.of_kind(PrefixKind::UserAccess) {
            let class = self.as_info(r.owner).class;
            if !matches!(class, AsClass::Eyeball | AsClass::Stub) {
                return Err(format!(
                    "user prefix {} owned by {} ({})",
                    r.net,
                    r.owner,
                    class.label()
                ));
            }
        }
        Ok(())
    }
}
