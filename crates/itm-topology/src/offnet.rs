//! Hypergiant off-net deployments.
//!
//! "The largest providers serve traffic from CDN caches in thousands of
//! networks around the world" (§1, citing \[25\]). An off-net deployment is a
//! cache cluster operated by a hypergiant but hosted inside another AS's
//! address space, serving that AS's (and sometimes its customers') users.
//! Off-nets are why traceroute-through-IXP traffic estimation fails (§1:
//! "the approach does not apply to … traffic … that flows from caches")
//! and are a primary target of the TLS-scan technique (§3.2.2, Figure 1b).

use itm_types::{Asn, PrefixId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One hypergiant cache cluster hosted inside a foreign AS.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OffnetDeployment {
    /// The hypergiant operating the servers.
    pub hypergiant: Asn,
    /// The AS hosting the cluster.
    pub host: Asn,
    /// The /24 (of kind [`crate::PrefixKind::OffnetCache`]) the cluster
    /// lives in, owned by `host`.
    pub prefix: PrefixId,
    /// City (world city index) of the cluster.
    pub city: u32,
}

/// All off-net deployments, with lookup indices.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct OffnetTable {
    deployments: Vec<OffnetDeployment>,
    by_hypergiant: BTreeMap<Asn, Vec<usize>>,
    by_host: BTreeMap<Asn, Vec<usize>>,
}

impl OffnetTable {
    /// Create an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a deployment.
    pub fn push(&mut self, d: OffnetDeployment) {
        let i = self.deployments.len();
        self.by_hypergiant.entry(d.hypergiant).or_default().push(i);
        self.by_host.entry(d.host).or_default().push(i);
        self.deployments.push(d);
    }

    /// All deployments.
    pub fn iter(&self) -> impl Iterator<Item = &OffnetDeployment> {
        self.deployments.iter()
    }

    /// Number of deployments.
    pub fn len(&self) -> usize {
        self.deployments.len()
    }

    /// Whether there are no deployments.
    pub fn is_empty(&self) -> bool {
        self.deployments.is_empty()
    }

    /// Deployments operated by a hypergiant.
    pub fn of_hypergiant(&self, hg: Asn) -> impl Iterator<Item = &OffnetDeployment> {
        self.by_hypergiant
            .get(&hg)
            .into_iter()
            .flatten()
            .map(move |&i| &self.deployments[i])
    }

    /// Deployments hosted inside `host`.
    pub fn hosted_by(&self, host: Asn) -> impl Iterator<Item = &OffnetDeployment> {
        self.by_host
            .get(&host)
            .into_iter()
            .flatten()
            .map(move |&i| &self.deployments[i])
    }

    /// The deployment of `hg` inside `host`, if any.
    pub fn find(&self, hg: Asn, host: Asn) -> Option<&OffnetDeployment> {
        self.of_hypergiant(hg).find(|d| d.host == host)
    }

    /// Number of distinct host ASes carrying at least one off-net.
    pub fn distinct_hosts(&self) -> usize {
        self.by_host.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dep(hg: u32, host: u32, pfx: u32) -> OffnetDeployment {
        OffnetDeployment {
            hypergiant: Asn(hg),
            host: Asn(host),
            prefix: PrefixId(pfx),
            city: 0,
        }
    }

    #[test]
    fn indices_work() {
        let mut t = OffnetTable::new();
        t.push(dep(1, 10, 100));
        t.push(dep(1, 11, 101));
        t.push(dep(2, 10, 102));
        assert_eq!(t.len(), 3);
        assert_eq!(t.of_hypergiant(Asn(1)).count(), 2);
        assert_eq!(t.hosted_by(Asn(10)).count(), 2);
        assert_eq!(t.find(Asn(2), Asn(10)).unwrap().prefix, PrefixId(102));
        assert!(t.find(Asn(2), Asn(11)).is_none());
        assert_eq!(t.distinct_hosts(), 2);
    }

    #[test]
    fn empty_table() {
        let t = OffnetTable::new();
        assert!(t.is_empty());
        assert_eq!(t.of_hypergiant(Asn(1)).count(), 0);
        assert_eq!(t.hosted_by(Asn(1)).count(), 0);
    }
}
