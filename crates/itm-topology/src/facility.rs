//! Colocation facilities and Internet exchange points.
//!
//! §3.3.3: "Increasingly many networks indicate in PeeringDB the colocation
//! facilities in which they maintain a peering presence. Given two networks
//! are both present in a facility, it may be possible to develop techniques
//! to predict how likely it is that two networks interconnect". The
//! facility/IXP registry built here is the ground truth behind both peering
//! formation (in the generator) and the §3.3.3 recommender (in `itm-core`).

use itm_types::{Asn, FacilityId, IxpId};
use serde::{Deserialize, Serialize};

/// A colocation facility in one city.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Facility {
    /// Facility id (dense).
    pub id: FacilityId,
    /// City (index into the world city table) where the facility stands.
    pub city: u32,
    /// ASes with presence in this facility, sorted by ASN.
    pub tenants: Vec<Asn>,
}

impl Facility {
    /// Whether `asn` is present in this facility.
    pub fn has_tenant(&self, asn: Asn) -> bool {
        self.tenants.binary_search(&asn).is_ok()
    }
}

/// An Internet exchange point. IXPs live *in* a facility's city but have
/// their own membership (networks connect to the shared fabric).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Ixp {
    /// IXP id (dense).
    pub id: IxpId,
    /// City where the exchange operates.
    pub city: u32,
    /// Member ASes, sorted by ASN.
    pub members: Vec<Asn>,
}

impl Ixp {
    /// Whether `asn` is a member of this exchange.
    pub fn has_member(&self, asn: Asn) -> bool {
        self.members.binary_search(&asn).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tenant_lookup_uses_sorted_order() {
        let f = Facility {
            id: FacilityId(0),
            city: 1,
            tenants: vec![Asn(2), Asn(5), Asn(9)],
        };
        assert!(f.has_tenant(Asn(5)));
        assert!(!f.has_tenant(Asn(4)));
    }

    #[test]
    fn ixp_membership() {
        let x = Ixp {
            id: IxpId(0),
            city: 0,
            members: vec![Asn(1), Asn(3)],
        };
        assert!(x.has_member(Asn(1)));
        assert!(!x.has_member(Asn(2)));
    }
}
