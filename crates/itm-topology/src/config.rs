//! Topology generator configuration.

use itm_types::geo::WorldConfig;
use itm_types::{ItmError, Result};
use serde::{Deserialize, Serialize};

/// Parameters for [`crate::generate`].
///
/// Defaults produce a mid-size Internet (≈2,000 ASes, ≈60k routed /24s)
/// that exhibits all the structural phenomena the experiments need while
/// building in well under a second. `TopologyConfig::small()` is for unit
/// tests; `TopologyConfig::large()` approaches published Internet scale
/// ratios for the headline benchmark runs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TopologyConfig {
    /// World (countries, cities) generation parameters.
    pub world: WorldConfig,
    /// Number of tier-1 backbone networks (full clique).
    pub n_tier1: usize,
    /// Number of transit providers.
    pub n_transit: usize,
    /// Number of eyeball/access networks.
    pub n_eyeball: usize,
    /// Number of stub/enterprise networks.
    pub n_stub: usize,
    /// Number of hypergiant content providers.
    pub n_hypergiant: usize,
    /// Number of public cloud providers.
    pub n_cloud: usize,

    /// Facilities per city are drawn in `0..=max_facilities_per_city`,
    /// weighted by city size.
    pub max_facilities_per_city: usize,
    /// Fraction of cities (largest first) that host an IXP.
    pub ixp_city_fraction: f64,

    /// Mean transit providers for a multihomed network.
    pub mean_providers: f64,
    /// Global scale on peering propensity (1.0 = calibrated default).
    pub peering_intensity: f64,
    /// Fraction of eyeball ASes in which each hypergiant attempts to place
    /// an off-net cache (largest eyeballs first): the consolidation knob.
    pub offnet_reach: f64,

    /// Mean /24s allocated to an eyeball AS (log-normal around this).
    pub eyeball_mean_prefixes: f64,
    /// Mean /24s for a stub.
    pub stub_mean_prefixes: f64,
    /// Mean hosting /24s for hypergiants/clouds.
    pub content_mean_prefixes: f64,
}

impl Default for TopologyConfig {
    fn default() -> Self {
        TopologyConfig {
            world: WorldConfig::default(),
            n_tier1: 10,
            n_transit: 180,
            n_eyeball: 800,
            n_stub: 1000,
            n_hypergiant: 8,
            n_cloud: 4,
            max_facilities_per_city: 3,
            ixp_city_fraction: 0.25,
            mean_providers: 1.8,
            peering_intensity: 1.0,
            offnet_reach: 0.45,
            eyeball_mean_prefixes: 40.0,
            stub_mean_prefixes: 2.0,
            content_mean_prefixes: 60.0,
        }
    }
}

impl TopologyConfig {
    /// A tiny Internet for unit tests (≈120 ASes) that still has every
    /// class represented and every structural feature present.
    pub fn small() -> Self {
        TopologyConfig {
            world: WorldConfig {
                n_countries: 6,
                n_cities: 30,
                population_skew: 1.0,
            },
            n_tier1: 4,
            n_transit: 14,
            n_eyeball: 50,
            n_stub: 50,
            n_hypergiant: 3,
            n_cloud: 2,
            max_facilities_per_city: 2,
            ixp_city_fraction: 0.3,
            mean_providers: 1.8,
            peering_intensity: 1.0,
            offnet_reach: 0.5,
            eyeball_mean_prefixes: 6.0,
            stub_mean_prefixes: 1.5,
            content_mean_prefixes: 8.0,
        }
    }

    /// A large Internet whose class ratios approach the real one's
    /// (≈20k ASes). Used by scale benchmarks; building it takes seconds.
    pub fn large() -> Self {
        TopologyConfig {
            world: WorldConfig {
                n_countries: 60,
                n_cities: 600,
                population_skew: 1.05,
            },
            n_tier1: 14,
            n_transit: 1500,
            n_eyeball: 8000,
            n_stub: 10000,
            n_hypergiant: 12,
            n_cloud: 6,
            max_facilities_per_city: 4,
            ixp_city_fraction: 0.2,
            mean_providers: 1.9,
            peering_intensity: 1.0,
            offnet_reach: 0.4,
            eyeball_mean_prefixes: 60.0,
            stub_mean_prefixes: 2.0,
            content_mean_prefixes: 100.0,
        }
    }

    /// Total number of ASes the configuration will produce.
    pub fn total_ases(&self) -> usize {
        self.n_tier1
            + self.n_transit
            + self.n_eyeball
            + self.n_stub
            + self.n_hypergiant
            + self.n_cloud
    }

    /// Validate invariants the generator relies on.
    pub fn validate(&self) -> Result<()> {
        if self.n_tier1 < 2 {
            return Err(ItmError::config("n_tier1", "need at least 2 tier-1s"));
        }
        if self.n_transit == 0 {
            return Err(ItmError::config("n_transit", "need at least 1 transit"));
        }
        if self.n_eyeball == 0 {
            return Err(ItmError::config("n_eyeball", "need at least 1 eyeball"));
        }
        if self.n_hypergiant == 0 {
            return Err(ItmError::config(
                "n_hypergiant",
                "the paper's Internet has hypergiants; need at least 1",
            ));
        }
        if !(0.0..=1.0).contains(&self.offnet_reach) {
            return Err(ItmError::config("offnet_reach", "must be in [0,1]"));
        }
        if !(0.0..=1.0).contains(&self.ixp_city_fraction) {
            return Err(ItmError::config("ixp_city_fraction", "must be in [0,1]"));
        }
        if self.mean_providers < 1.0 {
            return Err(ItmError::config(
                "mean_providers",
                "every non-tier-1 needs a provider; must be >= 1",
            ));
        }
        if self.peering_intensity < 0.0 {
            return Err(ItmError::config("peering_intensity", "must be >= 0"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        TopologyConfig::default().validate().unwrap();
        TopologyConfig::small().validate().unwrap();
        TopologyConfig::large().validate().unwrap();
    }

    #[test]
    fn total_ases_adds_up() {
        let c = TopologyConfig::small();
        assert_eq!(c.total_ases(), 4 + 14 + 50 + 50 + 3 + 2);
    }

    #[test]
    fn validation_catches_bad_values() {
        let mut c = TopologyConfig::small();
        c.n_tier1 = 1;
        assert!(c.validate().is_err());
        let mut c = TopologyConfig::small();
        c.offnet_reach = 1.5;
        assert!(c.validate().is_err());
        let mut c = TopologyConfig::small();
        c.mean_providers = 0.5;
        assert!(c.validate().is_err());
        let mut c = TopologyConfig::small();
        c.n_hypergiant = 0;
        assert!(c.validate().is_err());
    }
}
