//! Inter-AS links: relationships and interconnection classes.

use itm_types::{Asn, FacilityId, IxpId};
use serde::{Deserialize, Serialize};

/// Dense index of a link in the topology's link table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct LinkId(pub u32);

impl LinkId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The business relationship on a link, in the Gao–Rexford model the
/// routing crate implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AsRel {
    /// `a` is the customer, `b` the provider (`a` pays `b`).
    CustomerToProvider,
    /// Settlement-free peering.
    PeerToPeer,
}

/// Where and how the interconnection happens. The distinction matters for
/// visibility (E12): private peering between a hypergiant and an eyeball is
/// precisely the link class the paper says is invisible to public
/// topologies (§1, citing \[4, 48, 63, 64\]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LinkClass {
    /// A transit (customer-provider) adjacency.
    Transit,
    /// Settlement-free peering across an IXP's shared fabric.
    PublicPeering(IxpId),
    /// Settlement-free private interconnect (PNI) inside a facility.
    PrivatePeering(FacilityId),
}

impl LinkClass {
    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            LinkClass::Transit => "transit",
            LinkClass::PublicPeering(_) => "public-peering",
            LinkClass::PrivatePeering(_) => "private-peering",
        }
    }
}

/// A ground-truth inter-AS adjacency.
///
/// Invariant: `a < b` for peer links (canonical order); for transit links
/// `a` is always the customer and `b` the provider.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Link {
    /// First endpoint (customer for transit links).
    pub a: Asn,
    /// Second endpoint (provider for transit links).
    pub b: Asn,
    /// Business relationship.
    pub rel: AsRel,
    /// Interconnection class / location.
    pub class: LinkClass,
}

impl Link {
    /// A transit link: `customer` buys from `provider`.
    pub fn transit(customer: Asn, provider: Asn) -> Link {
        Link {
            a: customer,
            b: provider,
            rel: AsRel::CustomerToProvider,
            class: LinkClass::Transit,
        }
    }

    /// A peering link in canonical (low ASN first) order.
    pub fn peering(x: Asn, y: Asn, class: LinkClass) -> Link {
        let (a, b) = if x <= y { (x, y) } else { (y, x) };
        Link {
            a,
            b,
            rel: AsRel::PeerToPeer,
            class,
        }
    }

    /// The endpoint that is not `asn`, or `None` if `asn` is not on the link.
    pub fn other(&self, asn: Asn) -> Option<Asn> {
        if self.a == asn {
            Some(self.b)
        } else if self.b == asn {
            Some(self.a)
        } else {
            None
        }
    }

    /// The unordered endpoint pair in canonical order, the key for
    /// comparing link *sets* regardless of direction.
    pub fn key(&self) -> (Asn, Asn) {
        if self.a <= self.b {
            (self.a, self.b)
        } else {
            (self.b, self.a)
        }
    }

    /// Whether this is a settlement-free peering link.
    pub fn is_peering(&self) -> bool {
        self.rel == AsRel::PeerToPeer
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peering_constructor_canonicalizes() {
        let l = Link::peering(Asn(9), Asn(2), LinkClass::PublicPeering(IxpId(0)));
        assert_eq!((l.a, l.b), (Asn(2), Asn(9)));
        assert!(l.is_peering());
        assert_eq!(l.key(), (Asn(2), Asn(9)));
    }

    #[test]
    fn transit_preserves_direction() {
        let l = Link::transit(Asn(10), Asn(3));
        assert_eq!(l.a, Asn(10)); // customer
        assert_eq!(l.b, Asn(3)); // provider
        assert!(!l.is_peering());
        assert_eq!(l.key(), (Asn(3), Asn(10)));
    }

    #[test]
    fn other_endpoint() {
        let l = Link::transit(Asn(1), Asn(2));
        assert_eq!(l.other(Asn(1)), Some(Asn(2)));
        assert_eq!(l.other(Asn(2)), Some(Asn(1)));
        assert_eq!(l.other(Asn(3)), None);
    }

    #[test]
    fn class_labels() {
        assert_eq!(LinkClass::Transit.label(), "transit");
        assert_eq!(LinkClass::PublicPeering(IxpId(1)).label(), "public-peering");
        assert_eq!(
            LinkClass::PrivatePeering(FacilityId(1)).label(),
            "private-peering"
        );
    }
}
