//! # itm-topology — a generative model of the Internet's structure
//!
//! The paper's measurement techniques exploit *structural* facts about the
//! modern Internet: a small set of hypergiants and clouds serve most
//! traffic (§1, \[25\], \[40\]); they peer directly and densely with eyeball
//! networks ("Internet flattening", §3.3.2, \[7, 19\]); they additionally
//! place off-net caches *inside* thousands of eyeball ASes \[25\]; most of
//! that peering is invisible to public BGP collectors (§1, \[4\]); and the
//! remaining Internet is a customer/provider hierarchy topped by a clique
//! of transit-free tier-1s.
//!
//! This crate generates synthetic Internets with exactly those properties,
//! with complete ground truth. Everything downstream — routing, traffic,
//! DNS, TLS, the measurement techniques, and the traffic-map assembly —
//! consumes the [`Topology`] built here.
//!
//! The generator is deterministic: the same [`TopologyConfig`] and seed
//! produce the identical Internet, byte for byte.
//!
//! ## Entity model
//!
//! * [`AsInfo`] — an autonomous system with a class ([`AsClass`]), a home
//!   country, a set of cities where it has points of presence, a peering
//!   policy, and allocated prefixes.
//! * [`Facility`] / [`Ixp`] — colocation facilities and exchange points in
//!   cities; co-presence at one is a precondition for peering, mirroring
//!   the PeeringDB-based link-prediction idea in §3.3.3.
//! * [`Link`] — a ground-truth adjacency with a business relationship
//!   ([`AsRel`]) and a [`LinkClass`] (transit / public peering at an IXP /
//!   private peering at a facility), used by the visibility model (E12).
//! * [`PrefixTable`] — every routed /24 with owner AS, anchor city, and
//!   [`PrefixKind`] (user access, infrastructure, cloud hosting, off-net).
//! * [`OffnetDeployment`] — hypergiant cache servers hosted inside other
//!   ASes' address space (\[25\]).

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

mod asinfo;
mod cone;
mod config;
mod facility;
mod generator;
mod link;
mod offnet;
mod prefix;
mod topology;

pub use asinfo::{AsClass, AsInfo, PeeringPolicy};
pub use cone::CustomerCones;
pub use config::TopologyConfig;
pub use facility::{Facility, Ixp};
pub use generator::generate;
pub use link::{AsRel, Link, LinkClass, LinkId};
pub use offnet::{OffnetDeployment, OffnetTable};
pub use prefix::{PrefixKind, PrefixRecord, PrefixTable, Slash24Allocator};
pub use topology::{Neighbor, NeighborKind, Topology};
