//! Routed prefixes: the address plan of the synthetic Internet.
//!
//! Table 1's network-precision axis is denominated in /24s ("Desired: /24
//! Prefix … 8.8M /24s"); every routed prefix in the substrate is a /24 with
//! an owner AS, an anchor city (for geolocation experiments), and a kind
//! that says what lives inside it. The measurement techniques iterate this
//! table exactly the way the paper iterates "all routable prefixes".

use itm_types::{Asn, Ipv4Addr, Ipv4Net, PrefixId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// What a prefix is used for. Drives which prefixes have users (traffic
/// model), which host serving infrastructure (TLS scans), and which are
/// off-net caches (hypergiant deployments inside eyeball networks).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PrefixKind {
    /// Residential/business access: hosts end users.
    UserAccess,
    /// Network infrastructure (router interfaces, NMS, DNS resolvers).
    Infrastructure,
    /// Hosting space in a cloud or hypergiant (on-net serving).
    Hosting,
    /// A hypergiant off-net cache block hosted inside another AS.
    /// The *owner* is the hosting AS; the deployment table records which
    /// hypergiant operates the servers.
    OffnetCache,
}

impl PrefixKind {
    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            PrefixKind::UserAccess => "user",
            PrefixKind::Infrastructure => "infra",
            PrefixKind::Hosting => "hosting",
            PrefixKind::OffnetCache => "offnet",
        }
    }
}

/// One routed /24.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PrefixRecord {
    /// Dense id (index into the table).
    pub id: PrefixId,
    /// The /24 itself.
    pub net: Ipv4Net,
    /// Originating AS.
    pub owner: Asn,
    /// City (world city index) the prefix is anchored in.
    pub city: u32,
    /// Usage class.
    pub kind: PrefixKind,
}

/// The routed-prefix table: dense storage plus lookup indices.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PrefixTable {
    records: Vec<PrefixRecord>,
    /// base address of /24 -> PrefixId
    by_net: BTreeMap<u32, PrefixId>,
    /// per-AS prefix lists
    by_owner: BTreeMap<Asn, Vec<PrefixId>>,
}

impl PrefixTable {
    /// Create an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a /24 for `owner`; panics if `net` is not a /24 or is already
    /// present (the address plan never double-allocates).
    pub fn push(&mut self, net: Ipv4Net, owner: Asn, city: u32, kind: PrefixKind) -> PrefixId {
        assert_eq!(net.len(), 24, "prefix table stores /24s only");
        let id = PrefixId(self.records.len() as u32);
        let prev = self.by_net.insert(net.network().0, id);
        assert!(prev.is_none(), "duplicate allocation of {net}");
        self.by_owner.entry(owner).or_default().push(id);
        self.records.push(PrefixRecord {
            id,
            net,
            owner,
            city,
            kind,
        });
        id
    }

    /// Number of routed prefixes.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Look up a record by id.
    pub fn get(&self, id: PrefixId) -> &PrefixRecord {
        &self.records[id.index()]
    }

    /// All records in id order.
    pub fn iter(&self) -> impl Iterator<Item = &PrefixRecord> {
        self.records.iter()
    }

    /// Ids of prefixes owned by `asn` (empty slice if none).
    pub fn owned_by(&self, asn: Asn) -> &[PrefixId] {
        self.by_owner.get(&asn).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Longest-prefix match for an address. All routes are /24s, so this
    /// is exact-match on the covering /24.
    pub fn lookup(&self, addr: Ipv4Addr) -> Option<&PrefixRecord> {
        self.by_net
            .get(&addr.slash24().network().0)
            .map(|id| self.get(*id))
    }

    /// Find the record for an exact /24.
    pub fn find(&self, net: Ipv4Net) -> Option<&PrefixRecord> {
        if net.len() != 24 {
            return None;
        }
        self.by_net.get(&net.network().0).map(|id| self.get(*id))
    }

    /// Ids of all prefixes of a given kind.
    pub fn of_kind(&self, kind: PrefixKind) -> impl Iterator<Item = &PrefixRecord> {
        self.records.iter().filter(move |r| r.kind == kind)
    }
}

/// Sequential /24 allocator walking the unicast space from `1.0.0.0`.
///
/// Real allocation is fragmented, but fragmentation is irrelevant to every
/// experiment (techniques key on the prefix *set*, not its layout), so a
/// linear plan keeps addresses readable in traces.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Slash24Allocator {
    next: u32,
}

impl Default for Slash24Allocator {
    fn default() -> Self {
        Self::new()
    }
}

impl Slash24Allocator {
    /// Start allocating at `1.0.0.0/24`.
    pub fn new() -> Self {
        Slash24Allocator {
            next: Ipv4Addr::new(1, 0, 0, 0).0,
        }
    }

    /// Allocate the next /24.
    pub fn alloc(&mut self) -> Ipv4Net {
        let net = Ipv4Addr(self.next).slash24();
        self.next = self
            .next
            .checked_add(256)
            // itm-lint: allow(P001): overflow needs ~16.7M allocations; config validation caps generation far below
            .expect("exhausted IPv4 space — configuration far too large");
        net
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table_with(n: usize) -> PrefixTable {
        let mut t = PrefixTable::new();
        let mut alloc = Slash24Allocator::new();
        for i in 0..n {
            t.push(
                alloc.alloc(),
                Asn((i % 3) as u32),
                0,
                PrefixKind::UserAccess,
            );
        }
        t
    }

    #[test]
    fn push_and_lookup() {
        let t = table_with(5);
        assert_eq!(t.len(), 5);
        let r = t.get(PrefixId(0));
        assert_eq!(r.net.to_string(), "1.0.0.0/24");
        let hit = t.lookup("1.0.2.77".parse().unwrap()).unwrap();
        assert_eq!(hit.id, PrefixId(2));
        assert!(t.lookup("9.9.9.9".parse().unwrap()).is_none());
    }

    #[test]
    fn find_exact() {
        let t = table_with(2);
        assert!(t.find("1.0.1.0/24".parse().unwrap()).is_some());
        assert!(t.find("1.0.9.0/24".parse().unwrap()).is_none());
        assert!(t.find("1.0.0.0/23".parse().unwrap()).is_none());
    }

    #[test]
    fn ownership_index() {
        let t = table_with(6);
        assert_eq!(t.owned_by(Asn(0)), &[PrefixId(0), PrefixId(3)]);
        assert_eq!(t.owned_by(Asn(99)), &[] as &[PrefixId]);
    }

    #[test]
    #[should_panic(expected = "duplicate allocation")]
    fn double_allocation_panics() {
        let mut t = PrefixTable::new();
        let net: Ipv4Net = "1.0.0.0/24".parse().unwrap();
        t.push(net, Asn(0), 0, PrefixKind::UserAccess);
        t.push(net, Asn(1), 0, PrefixKind::UserAccess);
    }

    #[test]
    #[should_panic(expected = "/24s only")]
    fn non_slash24_panics() {
        let mut t = PrefixTable::new();
        t.push(
            "1.0.0.0/23".parse().unwrap(),
            Asn(0),
            0,
            PrefixKind::UserAccess,
        );
    }

    #[test]
    fn allocator_is_sequential_and_disjoint() {
        let mut a = Slash24Allocator::new();
        let x = a.alloc();
        let y = a.alloc();
        assert_eq!(x.to_string(), "1.0.0.0/24");
        assert_eq!(y.to_string(), "1.0.1.0/24");
        assert!(!x.covers(y) && !y.covers(x));
    }

    #[test]
    fn of_kind_filters() {
        let mut t = PrefixTable::new();
        let mut a = Slash24Allocator::new();
        t.push(a.alloc(), Asn(0), 0, PrefixKind::UserAccess);
        t.push(a.alloc(), Asn(0), 0, PrefixKind::Infrastructure);
        t.push(a.alloc(), Asn(0), 0, PrefixKind::UserAccess);
        assert_eq!(t.of_kind(PrefixKind::UserAccess).count(), 2);
        assert_eq!(t.of_kind(PrefixKind::Hosting).count(), 0);
    }
}
