//! The Internet generator.
//!
//! Construction order mirrors how the real Internet is layered:
//!
//! 1. **Geography** — countries and cities ([`itm_types::geo::World`]).
//! 2. **ASes** — each class gets a home country, a city footprint, a
//!    peering policy, and a heavy-tailed size factor.
//! 3. **Facilities & IXPs** — placed in cities, populated by the ASes
//!    present there (the PeeringDB-like registry of §3.3.3).
//! 4. **Transit hierarchy** — every non-tier-1 buys from one or more
//!    providers "above" it; the customer/provider graph is acyclic by
//!    construction.
//! 5. **Peering** — tier-1 clique; co-located networks peer with
//!    probability driven by their policies; hypergiants and clouds peer
//!    aggressively with access networks (Internet flattening, §3.3.2).
//! 6. **Off-nets** — hypergiants place caches inside the largest eyeballs
//!    (§1, \[25\]).
//! 7. **Prefixes** — /24s allocated per AS, anchored in its cities.
//!
//! Every step draws from named sub-streams of the seed domain, so edits to
//! one step never reshuffle another.

use crate::asinfo::{AsClass, AsInfo, PeeringPolicy};
use crate::config::TopologyConfig;
use crate::facility::{Facility, Ixp};
use crate::link::{Link, LinkClass};
use crate::offnet::{OffnetDeployment, OffnetTable};
use crate::prefix::{PrefixKind, PrefixTable, Slash24Allocator};
use crate::topology::Topology;
use itm_types::geo::World;
use itm_types::rng::{lognormal, pareto, weighted_choice};
use itm_types::{Asn, Country, FacilityId, IxpId, Result, SeedDomain};
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::{BTreeSet, HashSet};

/// Generate a complete synthetic Internet.
///
/// Deterministic in `(cfg, seed)`. Panics only on internal invariant
/// violations (checked in debug builds); configuration errors are returned.
pub fn generate(cfg: &TopologyConfig, seed: u64) -> Result<Topology> {
    let _span = itm_obs::span("topology.generate");
    cfg.validate()?;
    let seeds = SeedDomain::new(seed).child("topology");
    let world = World::generate(&cfg.world, &seeds);

    let ases = make_ases(cfg, &world, &seeds);
    let (facilities, ixps) = make_colocation(cfg, &world, &ases, &seeds);
    let mut links = Vec::new();
    let mut link_keys: HashSet<(Asn, Asn)> = HashSet::new();
    {
        let _span = itm_obs::span("transit.form");
        make_transit(cfg, &ases, &seeds, &mut links, &mut link_keys);
    }
    {
        let _span = itm_obs::span("peering.form");
        make_peering(
            cfg,
            &ases,
            &facilities,
            &ixps,
            &seeds,
            &mut links,
            &mut link_keys,
        );
    }

    let mut prefixes = PrefixTable::new();
    let mut alloc = Slash24Allocator::new();
    make_prefixes(cfg, &ases, &seeds, &mut prefixes, &mut alloc);
    let offnets = make_offnets(cfg, &ases, &seeds, &mut prefixes, &mut alloc);

    itm_obs::counter!("topology.ases").add(ases.len() as u64);
    itm_obs::counter!("topology.links").add(links.len() as u64);
    itm_obs::counter!("topology.prefixes").add(prefixes.len() as u64);
    itm_obs::counter!("topology.offnets").add(offnets.len() as u64);

    let topo = Topology::from_parts(
        cfg.clone(),
        seed,
        world,
        ases,
        links,
        facilities,
        ixps,
        prefixes,
        offnets,
    );
    debug_assert_eq!(topo.check_invariants(), Ok(()));
    Ok(topo)
}

/// Draw a home country weighted by population.
fn pick_country(world: &World, rng: &mut StdRng) -> Country {
    let weights: Vec<f64> = world
        .countries
        .iter()
        .map(|c| c.population_weight)
        .collect();
    // `weighted_choice` is None only for an all-zero table; population
    // weights are strictly positive, and country 0 is a deterministic
    // fallback rather than a panic.
    let i = weighted_choice(rng, &weights).unwrap_or(0);
    Country(i as u16)
}

/// Cities of a country sorted by size weight, largest first.
fn country_cities_by_size(world: &World, c: Country) -> Vec<u32> {
    let mut cities: Vec<(u32, f64)> = world
        .cities_of(c)
        .map(|city| (city.id, city.size_weight))
        .collect();
    cities.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    cities.into_iter().map(|(id, _)| id).collect()
}

/// Global city ids sorted by size weight descending.
fn global_cities_by_size(world: &World) -> Vec<u32> {
    let mut cities: Vec<(u32, f64)> = world
        .cities
        .iter()
        .map(|c| {
            let cw = world.country(c.country).population_weight;
            (c.id, c.size_weight * cw)
        })
        .collect();
    cities.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    cities.into_iter().map(|(id, _)| id).collect()
}

fn make_ases(cfg: &TopologyConfig, world: &World, seeds: &SeedDomain) -> Vec<AsInfo> {
    let mut rng = seeds.rng("ases");
    let global = global_cities_by_size(world);
    let mut out = Vec::with_capacity(cfg.total_ases());
    let mut next = 0u32;

    let push = |class: AsClass,
                home: Country,
                cities: Vec<u32>,
                policy: PeeringPolicy,
                size: f64,
                next: &mut u32,
                out: &mut Vec<AsInfo>| {
        assert!(!cities.is_empty());
        out.push(AsInfo {
            asn: Asn(*next),
            class,
            home_country: home,
            cities,
            policy,
            size_factor: size,
        });
        *next += 1;
    };

    // Tier-1: global footprint across the biggest cities.
    for _ in 0..cfg.n_tier1 {
        let home = pick_country(world, &mut rng);
        let span = (global.len() * 3 / 10).max(5).min(global.len());
        let mut cities: Vec<u32> = global[..span].to_vec();
        // Always cover the home country's primary city too.
        if let Some(&primary) = country_cities_by_size(world, home).first() {
            if !cities.contains(&primary) {
                cities.push(primary);
            }
        }
        push(
            AsClass::Tier1,
            home,
            cities,
            PeeringPolicy::Restrictive,
            pareto(&mut rng, 1.0, 1.5),
            &mut next,
            &mut out,
        );
    }

    // Transit: regional footprint (home country plus occasional neighbor).
    for _ in 0..cfg.n_transit {
        let home = pick_country(world, &mut rng);
        let mut cities = country_cities_by_size(world, home);
        let want = rng.gen_range(2..=8usize).min(cities.len().max(1));
        cities.truncate(want.max(1));
        if rng.gen_bool(0.3) {
            let other = pick_country(world, &mut rng);
            if let Some(&c) = country_cities_by_size(world, other).first() {
                if !cities.contains(&c) {
                    cities.push(c);
                }
            }
        }
        let policy = if rng.gen_bool(0.5) {
            PeeringPolicy::Selective
        } else {
            PeeringPolicy::Restrictive
        };
        push(
            AsClass::Transit,
            home,
            cities,
            policy,
            pareto(&mut rng, 1.0, 1.3),
            &mut next,
            &mut out,
        );
    }

    // Eyeball: domestic footprint; size very heavy-tailed (national
    // incumbents vs small regionals) — this skew is what Fig. 2 plots.
    for _ in 0..cfg.n_eyeball {
        let home = pick_country(world, &mut rng);
        let all = country_cities_by_size(world, home);
        let want = rng.gen_range(1..=6usize).min(all.len());
        let cities = all[..want.max(1)].to_vec();
        let policy = if rng.gen_bool(0.6) {
            PeeringPolicy::Open
        } else {
            PeeringPolicy::Selective
        };
        push(
            AsClass::Eyeball,
            home,
            cities,
            policy,
            pareto(&mut rng, 1.0, 1.1),
            &mut next,
            &mut out,
        );
    }

    // Stub: single city.
    for _ in 0..cfg.n_stub {
        let home = pick_country(world, &mut rng);
        let all = country_cities_by_size(world, home);
        let city = all[rng.gen_range(0..all.len())];
        let policy = if rng.gen_bool(0.7) {
            PeeringPolicy::Open
        } else {
            PeeringPolicy::Selective
        };
        push(
            AsClass::Stub,
            home,
            vec![city],
            policy,
            lognormal(&mut rng, 0.0, 0.5),
            &mut next,
            &mut out,
        );
    }

    // Hypergiants: near-global footprint, open policy (they want to be
    // one hop from everyone), enormous size factors.
    for i in 0..cfg.n_hypergiant {
        let home = pick_country(world, &mut rng);
        let span = (global.len() * 4 / 10).max(5).min(global.len());
        push(
            AsClass::Hypergiant,
            home,
            global[..span].to_vec(),
            PeeringPolicy::Open,
            // Rank-ordered sizes: hypergiant 0 is the largest.
            16.0 / (i as f64 + 1.0).powf(0.7),
            &mut next,
            &mut out,
        );
    }

    // Clouds: regional hubs ("regions") in big cities.
    for i in 0..cfg.n_cloud {
        let home = pick_country(world, &mut rng);
        let span = (global.len() * 2 / 10).max(3).min(global.len());
        push(
            AsClass::Cloud,
            home,
            global[..span].to_vec(),
            PeeringPolicy::Open,
            10.0 / (i as f64 + 1.0).powf(0.7),
            &mut next,
            &mut out,
        );
    }

    out
}

fn make_colocation(
    cfg: &TopologyConfig,
    world: &World,
    ases: &[AsInfo],
    seeds: &SeedDomain,
) -> (Vec<Facility>, Vec<Ixp>) {
    let mut rng = seeds.rng("colocation");

    // Which ASes sit in which city (precomputed inverse index).
    let mut by_city: Vec<Vec<Asn>> = vec![Vec::new(); world.cities.len()];
    for a in ases {
        for &c in &a.cities {
            by_city[c as usize].push(a.asn);
        }
    }

    // Facilities: bigger cities get more.
    let mut facilities = Vec::new();
    for city in &world.cities {
        let n_fac = 1
            + ((city.size_weight * cfg.max_facilities_per_city as f64) as usize)
                .min(cfg.max_facilities_per_city.saturating_sub(1));
        for _ in 0..n_fac {
            let mut tenants = Vec::new();
            for &asn in &by_city[city.id as usize] {
                let class = ases[asn.index()].class;
                // Join probability: infrastructure-heavy classes colocate
                // almost always; stubs only sometimes.
                let p = match class {
                    AsClass::Tier1 => 0.9,
                    AsClass::Hypergiant => 0.95,
                    AsClass::Cloud => 0.9,
                    AsClass::Transit => 0.8,
                    AsClass::Eyeball => 0.6,
                    AsClass::Stub => 0.25,
                };
                if rng.gen_bool(p) {
                    tenants.push(asn);
                }
            }
            tenants.sort_unstable();
            tenants.dedup();
            facilities.push(Facility {
                id: FacilityId(facilities.len() as u32),
                city: city.id,
                tenants,
            });
        }
    }

    // IXPs: the largest cities (globally) get one exchange each.
    let global = global_cities_by_size(world);
    let n_ixps = ((global.len() as f64 * cfg.ixp_city_fraction) as usize).max(1);
    let mut ixps = Vec::new();
    for &city in global.iter().take(n_ixps) {
        let mut members = Vec::new();
        for &asn in &by_city[city as usize] {
            let class = ases[asn.index()].class;
            let p = match class {
                AsClass::Tier1 => 0.2, // tier-1s rarely join exchanges
                AsClass::Hypergiant => 0.9,
                AsClass::Cloud => 0.85,
                AsClass::Transit => 0.7,
                AsClass::Eyeball => 0.75,
                AsClass::Stub => 0.4,
            };
            if rng.gen_bool(p) {
                members.push(asn);
            }
        }
        members.sort_unstable();
        members.dedup();
        ixps.push(Ixp {
            id: IxpId(ixps.len() as u32),
            city,
            members,
        });
    }

    (facilities, ixps)
}

/// Build the transit hierarchy. Acyclicity argument: tier-1s sell to
/// everyone; transits only buy from tier-1s and *lower-indexed* transits;
/// eyeballs and content buy from transits/tier-1s; stubs buy from transits
/// and eyeballs. No class ever sells "upwards", so provider chains strictly
/// descend a well-founded order.
fn make_transit(
    cfg: &TopologyConfig,
    ases: &[AsInfo],
    seeds: &SeedDomain,
    links: &mut Vec<Link>,
    keys: &mut HashSet<(Asn, Asn)>,
) {
    let mut rng = seeds.rng("transit");
    let tier1: Vec<&AsInfo> = ases.iter().filter(|a| a.class == AsClass::Tier1).collect();
    let transits: Vec<&AsInfo> = ases
        .iter()
        .filter(|a| a.class == AsClass::Transit)
        .collect();
    let eyeballs: Vec<&AsInfo> = ases
        .iter()
        .filter(|a| a.class == AsClass::Eyeball)
        .collect();

    let add =
        |customer: Asn, provider: Asn, links: &mut Vec<Link>, keys: &mut HashSet<(Asn, Asn)>| {
            let l = Link::transit(customer, provider);
            if keys.insert(l.key()) {
                links.push(l);
            }
        };

    // How many providers a multihomed network buys from.
    let provider_count = |rng: &mut StdRng| -> usize {
        let extra = cfg.mean_providers - 1.0;
        1 + (0..3)
            .filter(|_| rng.gen_bool((extra / 3.0).clamp(0.0, 1.0)))
            .count()
    };

    // Geographic affinity: prefer providers that share the home country,
    // then big ones.
    let weight_for = |a: &AsInfo, p: &AsInfo| -> f64 {
        let geo = if a.home_country == p.home_country {
            8.0
        } else {
            1.0
        };
        geo * p.size_factor
    };

    // Transits buy from tier-1s (always at least one) and sometimes from
    // bigger (lower-indexed) transits.
    for (ti, t) in transits.iter().enumerate() {
        let n_prov = provider_count(&mut rng);
        // candidate set: all tier-1s + transits with lower vec index
        let mut cands: Vec<&AsInfo> = tier1.clone();
        cands.extend(transits[..ti].iter().copied());
        let weights: Vec<f64> = cands.iter().map(|p| weight_for(t, p)).collect();
        let mut chosen = BTreeSet::new();
        for _ in 0..n_prov {
            if let Some(i) = weighted_choice(&mut rng, &weights) {
                chosen.insert(cands[i].asn);
            }
        }
        // Guarantee reachability through at least one tier-1-rooted chain.
        if chosen.is_empty() {
            chosen.insert(tier1[rng.gen_range(0..tier1.len())].asn);
        }
        for p in chosen {
            add(t.asn, p, links, keys);
        }
    }

    // Eyeballs buy from transits (domestic preferred), occasionally tier-1.
    for e in &eyeballs {
        let n_prov = provider_count(&mut rng);
        let weights: Vec<f64> = transits.iter().map(|p| weight_for(e, p)).collect();
        let mut chosen = BTreeSet::new();
        for _ in 0..n_prov {
            if rng.gen_bool(0.1) {
                chosen.insert(tier1[rng.gen_range(0..tier1.len())].asn);
            } else if let Some(i) = weighted_choice(&mut rng, &weights) {
                chosen.insert(transits[i].asn);
            }
        }
        if chosen.is_empty() {
            chosen.insert(transits[rng.gen_range(0..transits.len())].asn);
        }
        for p in chosen {
            add(e.asn, p, links, keys);
        }
    }

    // Stubs buy from transits or (domestic) eyeballs.
    for s in ases.iter().filter(|a| a.class == AsClass::Stub) {
        let n_prov = provider_count(&mut rng);
        let mut chosen = BTreeSet::new();
        for _ in 0..n_prov {
            if rng.gen_bool(0.4) {
                // domestic eyeball reseller if one exists
                let domestic: Vec<&&AsInfo> = eyeballs
                    .iter()
                    .filter(|e| e.home_country == s.home_country)
                    .collect();
                if !domestic.is_empty() {
                    let w: Vec<f64> = domestic.iter().map(|e| e.size_factor).collect();
                    if let Some(i) = weighted_choice(&mut rng, &w) {
                        chosen.insert(domestic[i].asn);
                        continue;
                    }
                }
            }
            let weights: Vec<f64> = transits.iter().map(|p| weight_for(s, p)).collect();
            if let Some(i) = weighted_choice(&mut rng, &weights) {
                chosen.insert(transits[i].asn);
            }
        }
        if chosen.is_empty() {
            chosen.insert(transits[rng.gen_range(0..transits.len())].asn);
        }
        for p in chosen {
            add(s.asn, p, links, keys);
        }
    }

    // Hypergiants and clouds buy from a few tier-1s (reachability of last
    // resort; most of their traffic will flow over peering).
    for c in ases
        .iter()
        .filter(|a| matches!(a.class, AsClass::Hypergiant | AsClass::Cloud))
    {
        let n = rng.gen_range(2..=3usize).min(tier1.len());
        let mut order: Vec<usize> = (0..tier1.len()).collect();
        // deterministic shuffle
        for i in (1..order.len()).rev() {
            order.swap(i, rng.gen_range(0..=i));
        }
        for &i in order.iter().take(n) {
            add(c.asn, tier1[i].asn, links, keys);
        }
    }
}

/// Probability that two co-located networks agree to peer, before the
/// global intensity scale. Encodes the flattening story: content↔access
/// peering is near-certain; access↔access is common at IXPs; anything
/// involving a restrictive transit seller is rare.
fn peer_probability(a: &AsInfo, b: &AsInfo) -> f64 {
    use AsClass::*;
    let class_factor = match (a.class, b.class) {
        (Hypergiant, Eyeball) | (Eyeball, Hypergiant) => 3.0,
        (Cloud, Eyeball) | (Eyeball, Cloud) => 2.5,
        (Hypergiant, Transit) | (Transit, Hypergiant) => 1.6,
        (Cloud, Transit) | (Transit, Cloud) => 1.4,
        (Hypergiant, Stub) | (Stub, Hypergiant) => 0.8,
        (Cloud, Stub) | (Stub, Cloud) => 0.7,
        (Eyeball, Eyeball) => 1.0,
        (Eyeball, Stub) | (Stub, Eyeball) => 0.7,
        (Stub, Stub) => 0.4,
        (Transit, Transit) => 0.5,
        (Transit, Eyeball) | (Eyeball, Transit) => 0.6,
        (Transit, Stub) | (Stub, Transit) => 0.3,
        (Tier1, _) | (_, Tier1) => 0.05,
        (Hypergiant, Hypergiant) | (Cloud, Cloud) | (Hypergiant, Cloud) | (Cloud, Hypergiant) => {
            1.2
        }
    };
    let policy = (a.policy.base_propensity() * b.policy.base_propensity()).sqrt();
    (class_factor * policy * 0.5).min(0.98)
}

fn make_peering(
    cfg: &TopologyConfig,
    ases: &[AsInfo],
    facilities: &[Facility],
    ixps: &[Ixp],
    seeds: &SeedDomain,
    links: &mut Vec<Link>,
    keys: &mut HashSet<(Asn, Asn)>,
) {
    let mut rng = seeds.rng("peering");

    let add = |x: Asn,
               y: Asn,
               class: LinkClass,
               links: &mut Vec<Link>,
               keys: &mut HashSet<(Asn, Asn)>|
     -> bool {
        let l = Link::peering(x, y, class);
        if keys.insert(l.key()) {
            links.push(l);
            true
        } else {
            false
        }
    };

    // Tier-1 clique (private interconnects at the first facility both
    // tenant — or facility 0 as a fallback anchor).
    let tier1: Vec<Asn> = ases
        .iter()
        .filter(|a| a.class == AsClass::Tier1)
        .map(|a| a.asn)
        .collect();
    for (i, &t) in tier1.iter().enumerate() {
        for &u in tier1.iter().skip(i + 1) {
            let fac = facilities
                .iter()
                .find(|f| f.has_tenant(t) && f.has_tenant(u))
                .map(|f| f.id)
                .unwrap_or(FacilityId(0));
            add(t, u, LinkClass::PrivatePeering(fac), links, keys);
        }
    }

    // Hypergiant/cloud flattening pass: explicit PNIs with every co-located
    // access & transit network. This is the structural core of the paper's
    // Internet: "most users have short, downhill paths to services".
    let content: Vec<&AsInfo> = ases.iter().filter(|a| a.class.is_content()).collect();
    for hg in &content {
        let hg_cities: HashSet<u32> = hg.cities.iter().copied().collect();
        for other in ases.iter() {
            if other.asn == hg.asn || other.class.is_content() {
                continue;
            }
            if !other.cities.iter().any(|c| hg_cities.contains(c)) {
                continue;
            }
            let base = peer_probability(hg, other) * cfg.peering_intensity;
            // Size sweetens the deal: big eyeballs always get a PNI.
            let p = (base * (1.0 + other.size_factor.ln().max(0.0) * 0.3)).min(0.97);
            if rng.gen_bool(p.clamp(0.0, 1.0)) {
                // Anchor at a shared facility if there is one.
                let fac = facilities
                    .iter()
                    .find(|f| f.has_tenant(hg.asn) && f.has_tenant(other.asn))
                    .map(|f| f.id);
                let class = match fac {
                    Some(f) => LinkClass::PrivatePeering(f),
                    None => {
                        // fall back to a shared IXP port
                        match ixps
                            .iter()
                            .find(|x| x.has_member(hg.asn) && x.has_member(other.asn))
                        {
                            Some(x) => LinkClass::PublicPeering(x.id),
                            None => continue, // no common interconnection point
                        }
                    }
                };
                add(hg.asn, other.asn, class, links, keys);
            }
        }
    }

    // General IXP peering: pairwise among members.
    for ixp in ixps {
        for (i, &x) in ixp.members.iter().enumerate() {
            for &y in ixp.members.iter().skip(i + 1) {
                let (a, b) = (&ases[x.index()], &ases[y.index()]);
                // Skip pairs in a provider chain (they already have a link)
                // and content pairs already handled above.
                let p = peer_probability(a, b) * cfg.peering_intensity * 0.5;
                if rng.gen_bool(p.clamp(0.0, 1.0)) {
                    add(x, y, LinkClass::PublicPeering(ixp.id), links, keys);
                }
            }
        }
    }

    // Facility-based private peering among non-content networks (smaller
    // rate: PNIs need justification).
    for fac in facilities {
        for (i, &x) in fac.tenants.iter().enumerate() {
            for &y in fac.tenants.iter().skip(i + 1) {
                let (a, b) = (&ases[x.index()], &ases[y.index()]);
                if a.class.is_content() || b.class.is_content() {
                    continue; // already handled with full force above
                }
                let p = peer_probability(a, b) * cfg.peering_intensity * 0.12;
                if rng.gen_bool(p.clamp(0.0, 1.0)) {
                    add(x, y, LinkClass::PrivatePeering(fac.id), links, keys);
                }
            }
        }
    }
}

fn make_prefixes(
    cfg: &TopologyConfig,
    ases: &[AsInfo],
    seeds: &SeedDomain,
    prefixes: &mut PrefixTable,
    alloc: &mut Slash24Allocator,
) {
    let mut rng = seeds.rng("prefixes");
    for a in ases {
        let (n_user, n_infra, n_hosting) = match a.class {
            AsClass::Eyeball => {
                let mean = cfg.eyeball_mean_prefixes * a.size_factor;
                let n = lognormal(&mut rng, mean.max(1.0).ln(), 0.5).round() as usize;
                (n.max(1), 1, 0)
            }
            AsClass::Stub => {
                let n =
                    lognormal(&mut rng, cfg.stub_mean_prefixes.max(1.0).ln(), 0.4).round() as usize;
                (n.max(1), 0, 0)
            }
            AsClass::Transit => (0, rng.gen_range(1..=2), 0),
            AsClass::Tier1 => (0, rng.gen_range(2..=3), 0),
            AsClass::Hypergiant | AsClass::Cloud => {
                let mean = cfg.content_mean_prefixes * (a.size_factor / 8.0).max(0.3);
                let n = lognormal(&mut rng, mean.max(1.0).ln(), 0.4).round() as usize;
                (0, 1, n.max(2))
            }
        };
        // Spread across the AS's cities, first city (largest) favored.
        let city_weights: Vec<f64> = (0..a.cities.len())
            .map(|i| 1.0 / (i as f64 + 1.0))
            .collect();
        let place = |kind: PrefixKind,
                     count: usize,
                     rng: &mut StdRng,
                     prefixes: &mut PrefixTable,
                     alloc: &mut Slash24Allocator| {
            for _ in 0..count {
                let ci = weighted_choice(rng, &city_weights).unwrap_or(0);
                prefixes.push(alloc.alloc(), a.asn, a.cities[ci], kind);
            }
        };
        place(PrefixKind::UserAccess, n_user, &mut rng, prefixes, alloc);
        place(
            PrefixKind::Infrastructure,
            n_infra,
            &mut rng,
            prefixes,
            alloc,
        );
        place(PrefixKind::Hosting, n_hosting, &mut rng, prefixes, alloc);
    }
}

fn make_offnets(
    cfg: &TopologyConfig,
    ases: &[AsInfo],
    seeds: &SeedDomain,
    prefixes: &mut PrefixTable,
    alloc: &mut Slash24Allocator,
) -> OffnetTable {
    let mut rng = seeds.rng("offnets");
    let mut table = OffnetTable::new();

    // Largest eyeballs first: hypergiants prioritize big access networks.
    let mut eyeballs: Vec<&AsInfo> = ases
        .iter()
        .filter(|a| a.class == AsClass::Eyeball)
        .collect();
    eyeballs.sort_by(|a, b| {
        b.size_factor
            .total_cmp(&a.size_factor)
            .then(a.asn.cmp(&b.asn))
    });

    let hypergiants: Vec<&AsInfo> = ases
        .iter()
        .filter(|a| a.class == AsClass::Hypergiant)
        .collect();

    for (rank, hg) in hypergiants.iter().enumerate() {
        // The largest hypergiant reaches the configured fraction; smaller
        // ones progressively less (their off-net programs are smaller).
        let reach = cfg.offnet_reach / (1.0 + rank as f64 * 0.4);
        let n_targets = ((eyeballs.len() as f64) * reach).round() as usize;
        for host in eyeballs.iter().take(n_targets) {
            // Deployment succeeds with high probability (negotiations
            // occasionally fail).
            if !rng.gen_bool(0.9) {
                continue;
            }
            let city = host.cities[rng.gen_range(0..host.cities.len())];
            let pfx = prefixes.push(alloc.alloc(), host.asn, city, PrefixKind::OffnetCache);
            table.push(OffnetDeployment {
                hypergiant: hg.asn,
                host: host.asn,
                prefix: pfx,
                city,
            });
        }
    }

    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::AsRel;

    fn small() -> Topology {
        generate(&TopologyConfig::small(), 42).unwrap()
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small();
        let b = small();
        assert_eq!(a.links.len(), b.links.len());
        assert_eq!(a.prefixes.len(), b.prefixes.len());
        for (x, y) in a.links.iter().zip(&b.links) {
            assert_eq!(x, y);
        }
        let c = generate(&TopologyConfig::small(), 43).unwrap();
        assert!(
            a.links != c.links || a.prefixes.len() != c.prefixes.len(),
            "different seeds must produce different Internets"
        );
    }

    #[test]
    fn invariants_hold() {
        assert_eq!(small().check_invariants(), Ok(()));
        let d = generate(&TopologyConfig::default(), 7).unwrap();
        assert_eq!(d.check_invariants(), Ok(()));
    }

    #[test]
    fn class_counts_match_config() {
        let t = small();
        let cfg = TopologyConfig::small();
        assert_eq!(t.ases_of_class(AsClass::Tier1).count(), cfg.n_tier1);
        assert_eq!(t.ases_of_class(AsClass::Transit).count(), cfg.n_transit);
        assert_eq!(t.ases_of_class(AsClass::Eyeball).count(), cfg.n_eyeball);
        assert_eq!(t.ases_of_class(AsClass::Stub).count(), cfg.n_stub);
        assert_eq!(
            t.ases_of_class(AsClass::Hypergiant).count(),
            cfg.n_hypergiant
        );
        assert_eq!(t.ases_of_class(AsClass::Cloud).count(), cfg.n_cloud);
    }

    #[test]
    fn transit_graph_is_acyclic() {
        let t = small();
        // Kahn's algorithm over customer->provider edges.
        let n = t.n_ases();
        let mut indeg = vec![0usize; n];
        let mut out: Vec<Vec<usize>> = vec![Vec::new(); n];
        for l in &t.links {
            if l.rel == AsRel::CustomerToProvider {
                // edge customer -> provider
                out[l.a.index()].push(l.b.index());
                indeg[l.b.index()] += 1;
            }
        }
        let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut seen = 0;
        while let Some(u) = queue.pop() {
            seen += 1;
            for &v in &out[u] {
                indeg[v] -= 1;
                if indeg[v] == 0 {
                    queue.push(v);
                }
            }
        }
        assert_eq!(seen, n, "customer-provider cycle detected");
    }

    #[test]
    fn hypergiants_peer_widely_with_eyeballs() {
        let t = small();
        let hgs = t.hypergiants();
        let eyeballs: Vec<Asn> = t.ases_of_class(AsClass::Eyeball).map(|a| a.asn).collect();
        // The biggest hypergiant should peer with a sizable share of eyeballs.
        let hg = hgs[0];
        let peered = eyeballs.iter().filter(|&&e| t.has_link(hg, e)).count();
        assert!(
            peered as f64 >= eyeballs.len() as f64 * 0.2,
            "hypergiant peers with only {peered}/{} eyeballs",
            eyeballs.len()
        );
    }

    #[test]
    fn offnets_target_large_eyeballs() {
        let t = small();
        assert!(!t.offnets.is_empty());
        // Every host is an eyeball and the mean size factor of hosts
        // exceeds the overall eyeball mean (they target large networks).
        let mut host_sizes = Vec::new();
        for d in t.offnets.iter() {
            assert_eq!(t.as_info(d.host).class, AsClass::Eyeball);
            host_sizes.push(t.as_info(d.host).size_factor);
        }
        let all: Vec<f64> = t
            .ases_of_class(AsClass::Eyeball)
            .map(|a| a.size_factor)
            .collect();
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(mean(&host_sizes) > mean(&all));
    }

    #[test]
    fn most_peering_is_invisible_class() {
        // Structural precondition for E12: a large share of peering links
        // are private or hypergiant-access, the classes collectors miss.
        let t = small();
        let peering = t.count_links(|l| l.is_peering());
        let transit = t.count_links(|l| !l.is_peering());
        assert!(peering > transit, "peering {peering} vs transit {transit}");
    }

    #[test]
    fn prefixes_are_anchored_in_owner_cities() {
        let t = small();
        for r in t.prefixes.iter() {
            let a = t.as_info(r.owner);
            assert!(
                a.cities.contains(&r.city),
                "{} anchored outside {}'s footprint",
                r.net,
                r.owner
            );
        }
    }

    #[test]
    fn eyeballs_have_user_prefixes() {
        let t = small();
        for a in t.ases_of_class(AsClass::Eyeball) {
            let has_user = t
                .prefixes
                .owned_by(a.asn)
                .iter()
                .any(|&p| t.prefixes.get(p).kind == PrefixKind::UserAccess);
            assert!(has_user, "{} has no user prefix", a.asn);
        }
    }

    #[test]
    fn bad_config_is_rejected() {
        let mut cfg = TopologyConfig::small();
        cfg.n_tier1 = 0;
        assert!(generate(&cfg, 1).is_err());
    }
}
