//! Root DNS servers and their query logs.
//!
//! Chromium's no-TLD probes miss every cache and arrive at the roots from
//! the egress addresses of recursive resolvers. §3.1.3 lists the
//! technique's real-world constraints, all modelled here: logs capture
//! "the address of the recursive resolver (rather than of the client)";
//! "the measurements happen only once a year" (a DITL-style collection
//! window); and "more and more root operators anonymize the data in ways
//! that limit coverage" — per-root policies below decide whether a root
//! contributes usable entries.

use crate::chromium::ChromiumModel;
use crate::opendns::OpenResolver;
use crate::resolvers::ResolverAssignment;
use itm_topology::Topology;
use itm_types::rng::{lognormal, SeedDomain};
use itm_types::{Ipv4Addr, SimDuration};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// What a root operator does with its query logs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AnonymizationPolicy {
    /// Full source addresses shared with researchers (e.g. ISI, UMD).
    Open,
    /// Source addresses zeroed: counts exist but cannot be attributed.
    Anonymized,
    /// Logs not shared at all.
    Closed,
}

/// One root server ("letter").
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct RootServer {
    /// Letter index (0 = "A").
    pub letter: u8,
    /// Log-sharing policy.
    pub policy: AnonymizationPolicy,
}

/// The set of root servers.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RootServerSet {
    /// All roots.
    pub roots: Vec<RootServer>,
}

impl RootServerSet {
    /// A 13-letter root system with the given number of open-log and
    /// anonymized operators (the rest closed).
    pub fn new(n_open: usize, n_anonymized: usize) -> RootServerSet {
        assert!(n_open + n_anonymized <= 13, "only 13 letters exist");
        let mut roots = Vec::with_capacity(13);
        for i in 0..13u8 {
            let policy = if (i as usize) < n_open {
                AnonymizationPolicy::Open
            } else if (i as usize) < n_open + n_anonymized {
                AnonymizationPolicy::Anonymized
            } else {
                AnonymizationPolicy::Closed
            };
            roots.push(RootServer { letter: i, policy });
        }
        RootServerSet { roots }
    }

    /// The historical default: a couple of research-operated roots share
    /// full logs, several anonymize, the rest are closed.
    pub fn typical() -> RootServerSet {
        RootServerSet::new(3, 4)
    }

    /// Fraction of root queries that land in *usable* (open) logs,
    /// assuming resolvers spread queries evenly across letters.
    pub fn usable_fraction(&self) -> f64 {
        let open = self
            .roots
            .iter()
            .filter(|r| r.policy == AnonymizationPolicy::Open)
            .count();
        open as f64 / self.roots.len() as f64
    }
}

/// One aggregated log line: a resolver egress address and its Chromium
/// probe count over the collection window.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct RootLogEntry {
    /// Source address (a recursive resolver's egress).
    pub src: Ipv4Addr,
    /// Chromium-probe queries attributed to that source in open logs.
    pub queries: f64,
}

/// A DITL-style collection of root query logs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RootLogs {
    /// Usable entries (from open-log roots only), sorted by address.
    pub entries: Vec<RootLogEntry>,
    /// The collection window.
    pub window: SimDuration,
    /// Fraction of total root traffic the usable logs represent.
    pub usable_fraction: f64,
}

impl RootLogs {
    /// Simulate a collection: expected Chromium probes per resolver over
    /// the window, times the open-log fraction, times small log-normal
    /// collection noise.
    pub fn collect(
        topo: &Topology,
        resolvers: &ResolverAssignment,
        chromium: &ChromiumModel,
        open_resolver: &OpenResolver<'_>,
        roots: &RootServerSet,
        window: SimDuration,
        seeds: &SeedDomain,
    ) -> RootLogs {
        let seeds = seeds.child("rootlogs");
        let usable = roots.usable_fraction();
        let mut counts: HashMap<u32, f64> = HashMap::new();

        for r in topo.prefixes.iter() {
            let probes = chromium.probes_over(r.id, window);
            if probes <= 0.0 {
                continue;
            }
            // Split between the ISP resolver and the open resolver. A
            // forwarder resolver never queries the roots itself — its
            // share also egresses from the open resolver's addresses.
            let isp_share = resolvers.isp_share(r.id);
            let mut via_open = resolvers.open_share(r.id);
            if isp_share > 0.0 {
                match resolvers.resolver_of(r.owner) {
                    Some(res) if !res.forwards_to_open => {
                        *counts.entry(res.addr.0).or_insert(0.0) += probes * isp_share;
                    }
                    _ => via_open += isp_share,
                }
            }
            if via_open > 0.0 {
                let egress = open_resolver.pop_egress_addr(open_resolver.pop_of(r.id));
                *counts.entry(egress.0).or_insert(0.0) += probes * via_open;
            }
        }

        let mut entries: Vec<RootLogEntry> = counts
            .into_iter()
            .map(|(addr, total)| {
                let mut rng = seeds.rng_indexed("noise", addr as u64);
                RootLogEntry {
                    src: Ipv4Addr(addr),
                    queries: total * usable * lognormal(&mut rng, 0.0, 0.05),
                }
            })
            .filter(|e| e.queries >= 1.0) // sub-query expectations never log
            .collect();
        entries.sort_by_key(|e| e.src);

        RootLogs {
            entries,
            window,
            usable_fraction: usable,
        }
    }

    /// Total usable query count.
    pub fn total_queries(&self) -> f64 {
        self.entries.iter().map(|e| e.queries).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::authoritative::AuthoritativeDns;
    use crate::chromium::ChromiumConfig;
    use crate::frontends::FrontendDirectory;
    use crate::opendns::OpenResolverConfig;
    use crate::resolvers::ResolverConfig;
    use itm_topology::{generate, TopologyConfig};
    use itm_traffic::{
        ServiceCatalog, ServiceCatalogConfig, TrafficConfig, TrafficModel, UserModel,
    };

    #[test]
    fn policy_partitions_and_usable_fraction() {
        let r = RootServerSet::new(3, 4);
        assert_eq!(r.roots.len(), 13);
        assert_eq!(
            r.roots
                .iter()
                .filter(|x| x.policy == AnonymizationPolicy::Open)
                .count(),
            3
        );
        assert!((r.usable_fraction() - 3.0 / 13.0).abs() < 1e-12);
        assert_eq!(RootServerSet::new(0, 0).usable_fraction(), 0.0);
    }

    #[test]
    #[should_panic(expected = "13 letters")]
    fn too_many_roots_panics() {
        RootServerSet::new(10, 5);
    }

    #[test]
    fn collection_attributes_probes_to_resolvers() {
        let seeds = SeedDomain::new(53);
        let topo = generate(&TopologyConfig::small(), 53).unwrap();
        let users = UserModel::generate(&topo, &seeds);
        let catalog = ServiceCatalog::generate(&ServiceCatalogConfig::small(), &topo, &seeds);
        let traffic =
            TrafficModel::build(&topo, &users, &catalog, TrafficConfig::default(), &seeds);
        let resolvers = ResolverAssignment::build(&topo, &ResolverConfig::default(), &seeds);
        let frontends = FrontendDirectory::build(&topo, &catalog);
        let auth = AuthoritativeDns::new(&topo, &catalog, &frontends);
        let open = OpenResolver::deploy(
            &topo,
            &users,
            &catalog,
            &traffic,
            &resolvers,
            auth,
            OpenResolverConfig::default(),
            &seeds,
        )
        .expect("deploy open resolver");
        let chromium = ChromiumModel::build(&topo, &users, ChromiumConfig::default(), &seeds);
        let roots = RootServerSet::typical();
        let logs = RootLogs::collect(
            &topo,
            &resolvers,
            &chromium,
            &open,
            &roots,
            SimDuration::days(2),
            &seeds,
        );
        assert!(!logs.entries.is_empty());
        assert!(logs.total_queries() > 0.0);
        // Entries are sorted and deduplicated by address.
        for w in logs.entries.windows(2) {
            assert!(w[0].src < w[1].src);
        }
        // A longer window yields more queries.
        let logs7 = RootLogs::collect(
            &topo,
            &resolvers,
            &chromium,
            &open,
            &roots,
            SimDuration::days(14),
            &seeds,
        );
        assert!(logs7.total_queries() > logs.total_queries());
        // Zero open roots -> unusable collection.
        let closed = RootServerSet::new(0, 13);
        let none = RootLogs::collect(
            &topo,
            &resolvers,
            &chromium,
            &open,
            &closed,
            SimDuration::days(2),
            &seeds,
        );
        assert_eq!(none.total_queries(), 0.0);
    }
}
