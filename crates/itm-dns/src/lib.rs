//! # itm-dns — the DNS ecosystem of the synthetic Internet
//!
//! Both §3.1.2 measurement approaches are DNS-based, so the substrate needs
//! a faithful DNS model:
//!
//! * [`frontends`]: the serving endpoints of every service (on-net PoPs,
//!   off-net caches, anycast VIPs) and the redirection policy authoritative
//!   servers apply — the ground truth for "what is the mapping from users
//!   to these hosts?" (§3.2).
//! * [`authoritative`]: per-service authoritative DNS with EDNS0 Client
//!   Subnet support flags; ECS-scoped answers for supporting services,
//!   resolver-location-based answers otherwise.
//! * [`resolvers`]: who resolves for whom — per-AS ISP resolvers plus an
//!   open-resolver share per prefix (Google Public DNS adoption "varies by
//!   country", §3.1.3), with a knob for clients whose resolver sits in a
//!   *different* AS (the assumption §3.1.3 must make, ablated in D2).
//! * [`opendns`]: the Google-Public-DNS analogue — anycast PoPs, per-PoP
//!   caches keyed by (domain, ECS scope), TTL expiry, and the
//!   non-recursive probe interface cache probing exploits. Cache state is
//!   computed analytically from the traffic model (occupancy within a TTL
//!   window is a deterministic Bernoulli draw with the Poisson-arrival
//!   probability), which makes Internet-wide probe sweeps cheap without
//!   changing the semantics a probing campaign observes.
//! * [`chromium`]: the Chromium intercept-probe workload — random
//!   no-valid-TLD queries emitted at browser startup, which bypass every
//!   cache and land at the roots \[59\].
//! * [`root`]: root DNS servers and their query logs, with per-operator
//!   anonymization policies ("more and more root operators anonymize the
//!   data in ways that limit coverage", §3.1.3).

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod authoritative;
pub mod chromium;
pub mod frontends;
pub mod opendns;
pub mod resolvers;
pub mod root;

pub use authoritative::AuthoritativeDns;
pub use chromium::ChromiumModel;
pub use frontends::{Endpoint, FrontendDirectory};
pub use opendns::{OpenResolver, OpenResolverConfig, ProbeResult};
pub use resolvers::{ResolverAssignment, ResolverConfig, ResolverId};
pub use root::{AnonymizationPolicy, RootLogEntry, RootLogs, RootServerSet};
