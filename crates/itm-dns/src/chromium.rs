//! The Chromium intercept-probe workload.
//!
//! §3.1.2, approach 2: "Chromium browsers use DNS probes to detect DNS
//! interception. Because these queries often have no valid TLD, they
//! should not result in cache hits at recursive resolvers, so the queries
//! go to a DNS root server. … the number of Chromium queries seen at the
//! DNS roots is likely roughly proportional to the number of Chromium
//! clients behind a recursive resolver."
//!
//! Model: each prefix's users start browsers some number of times per day;
//! a country-specific fraction of browsers are Chromium-based; each start
//! emits 3 random-label probes that always miss caches and land at a root
//! server via whatever recursive resolver the client uses.

use itm_topology::{PrefixKind, Topology};
use itm_traffic::UserModel;
use itm_types::rng::SeedDomain;
use itm_types::{PrefixId, SimDuration};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Number of random-label probes per browser startup (Chromium's actual
/// behaviour \[59\]).
pub const PROBES_PER_STARTUP: f64 = 3.0;

/// Parameters of the browser-population model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChromiumConfig {
    /// Mean browser startups per user per day.
    pub startups_per_user_day: f64,
}

impl Default for ChromiumConfig {
    fn default() -> Self {
        ChromiumConfig {
            startups_per_user_day: 2.5,
        }
    }
}

/// Chromium adoption and probe-rate model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChromiumModel {
    cfg: ChromiumConfig,
    /// Chromium share per country (Chromium-family browsers dominate but
    /// adoption "may be skewed", §3.1.3).
    country_share: Vec<f64>,
    /// Cached per-prefix probe rates (probes/day, daily mean).
    prefix_probes_per_day: Vec<f64>,
}

impl ChromiumModel {
    /// Build the model for a topology.
    pub fn build(
        topo: &Topology,
        users: &UserModel,
        cfg: ChromiumConfig,
        seeds: &SeedDomain,
    ) -> ChromiumModel {
        let seeds = seeds.child("chromium");
        let mut rng = seeds.rng("country-share");
        let country_share: Vec<f64> = topo
            .world
            .countries
            .iter()
            .map(|_| rng.gen_range(0.55..0.85))
            .collect();

        let mut prefix_probes_per_day = vec![0.0; topo.prefixes.len()];
        for r in topo.prefixes.iter() {
            if r.kind != PrefixKind::UserAccess {
                continue;
            }
            let country = topo.as_info(r.owner).home_country;
            let share = country_share[country.0 as usize];
            prefix_probes_per_day[r.id.index()] =
                users.users_of(r.id) * share * cfg.startups_per_user_day * PROBES_PER_STARTUP;
        }

        ChromiumModel {
            cfg,
            country_share,
            prefix_probes_per_day,
        }
    }

    /// Chromium share for a country index.
    pub fn country_share(&self, country: u16) -> f64 {
        self.country_share[country as usize]
    }

    /// Daily-mean Chromium probes originated by a prefix.
    pub fn probes_per_day(&self, p: PrefixId) -> f64 {
        self.prefix_probes_per_day[p.index()]
    }

    /// Expected probes from a prefix over a duration (daily mean rate; the
    /// roots aggregate over long windows, so diurnal detail washes out).
    pub fn probes_over(&self, p: PrefixId, d: SimDuration) -> f64 {
        self.prefix_probes_per_day[p.index()] * d.as_secs() as f64 / 86_400.0
    }

    /// The configured startups/user/day.
    pub fn startups_per_user_day(&self) -> f64 {
        self.cfg.startups_per_user_day
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use itm_topology::{generate, TopologyConfig};
    use itm_types::SeedDomain;

    fn setup() -> (Topology, UserModel, ChromiumModel) {
        let seeds = SeedDomain::new(47);
        let t = generate(&TopologyConfig::small(), 47).unwrap();
        let u = UserModel::generate(&t, &seeds);
        let c = ChromiumModel::build(&t, &u, ChromiumConfig::default(), &seeds);
        (t, u, c)
    }

    #[test]
    fn probes_proportional_to_users() {
        let (t, u, c) = setup();
        for r in t.prefixes.iter() {
            let probes = c.probes_per_day(r.id);
            if r.kind == PrefixKind::UserAccess {
                let country = t.as_info(r.owner).home_country;
                let expect = u.users_of(r.id)
                    * c.country_share(country.0)
                    * c.startups_per_user_day()
                    * PROBES_PER_STARTUP;
                assert!((probes - expect).abs() < 1e-9);
                assert!(probes > 0.0);
            } else {
                assert_eq!(probes, 0.0);
            }
        }
    }

    #[test]
    fn country_shares_in_documented_band() {
        let (t, _, c) = setup();
        for i in 0..t.world.countries.len() {
            let s = c.country_share(i as u16);
            assert!((0.55..0.85).contains(&s));
        }
    }

    #[test]
    fn probes_over_scales_linearly() {
        let (t, _, c) = setup();
        let p = t
            .prefixes
            .iter()
            .find(|r| r.kind == PrefixKind::UserAccess)
            .unwrap()
            .id;
        let day = c.probes_over(p, SimDuration::days(1));
        let halfday = c.probes_over(p, SimDuration::hours(12));
        assert!((day - 2.0 * halfday).abs() < 1e-9);
        assert!((day - c.probes_per_day(p)).abs() < 1e-9);
    }
}
