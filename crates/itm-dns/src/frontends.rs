//! Serving endpoints and the redirection policy.
//!
//! Every service has a set of places it can serve a client from: the
//! owner's on-net PoPs (hosting prefixes in its cities), plus — for
//! hypergiants — off-net caches inside eyeball networks \[25\]. The
//! *redirection policy* implemented here is the ground truth behind §3.2's
//! "mapping from users to hosts": a client whose AS hosts an off-net of
//! the service's operator is served from that off-net; everyone else goes
//! to the geographically nearest on-net PoP. Anycast services expose a
//! single VIP and leave site selection to BGP (computed elsewhere via
//! catchments).
//!
//! Selection is O(1): per-service off-net host maps and per-city
//! nearest-PoP tables are precomputed at build time, because the
//! measurement campaigns call `select` hundreds of millions of times.

use itm_topology::{PrefixKind, Topology};
use itm_traffic::{DeliveryMode, ServiceCatalog, ServiceOwner};
use itm_types::{Asn, Ipv4Addr, ServiceId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One place a service can be served from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Endpoint {
    /// The address clients connect to.
    pub addr: Ipv4Addr,
    /// AS the address lives in (owner for on-net, host for off-net).
    pub asn: Asn,
    /// City of the serving site.
    pub city: u32,
    /// `Some(host)` when the endpoint is an off-net cache inside `host`.
    pub offnet_host: Option<Asn>,
}

/// Per-service selection tables.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ServiceFrontends {
    endpoints: Vec<Endpoint>,
    /// client AS -> endpoint index of its in-AS off-net.
    offnet_by_host: BTreeMap<Asn, u32>,
    /// city -> index of nearest on-net endpoint.
    nearest_onnet_by_city: Vec<u32>,
    /// Anycast VIP, if the service is anycast.
    vip: Option<Ipv4Addr>,
}

/// All endpoints of all services, plus anycast VIPs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FrontendDirectory {
    per_service: Vec<ServiceFrontends>,
}

impl FrontendDirectory {
    /// Build endpoints and selection tables for a catalogue.
    ///
    /// On-net endpoints: one per hosting prefix of the serving AS, at host
    /// offset 10 within the /24. Off-net endpoints (hypergiants only): one
    /// per deployment, at offset 10 of the off-net /24. Anycast VIPs:
    /// offsets 100.. of the serving AS's hosting prefixes.
    pub fn build(topo: &Topology, catalog: &ServiceCatalog) -> FrontendDirectory {
        let n_cities = topo.world.cities.len();
        let mut per_service = Vec::with_capacity(catalog.len());
        for s in &catalog.services {
            let serving = s.owner.serving_as();
            let mut endpoints = Vec::new();
            for &p in topo.prefixes.owned_by(serving) {
                let r = topo.prefixes.get(p);
                if r.kind == PrefixKind::Hosting {
                    endpoints.push(Endpoint {
                        addr: r.net.addr(10),
                        asn: serving,
                        city: r.city,
                        offnet_host: None,
                    });
                }
            }
            let mut offnet_by_host = BTreeMap::new();
            if let ServiceOwner::Hypergiant(hg) = s.owner {
                for d in topo.offnets.of_hypergiant(hg) {
                    let r = topo.prefixes.get(d.prefix);
                    offnet_by_host.insert(d.host, endpoints.len() as u32);
                    endpoints.push(Endpoint {
                        addr: r.net.addr(10),
                        asn: hg,
                        city: d.city,
                        offnet_host: Some(d.host),
                    });
                }
            }
            assert!(
                !endpoints.is_empty(),
                "service {} has no serving endpoints",
                s.domain
            );

            // Nearest on-net endpoint per city (fall back to nearest of
            // any kind if a service were all-off-net).
            let onnet: Vec<(usize, &Endpoint)> = {
                let on: Vec<(usize, &Endpoint)> = endpoints
                    .iter()
                    .enumerate()
                    .filter(|(_, e)| e.offnet_host.is_none())
                    .collect();
                if on.is_empty() {
                    endpoints.iter().enumerate().collect()
                } else {
                    on
                }
            };
            let mut nearest_onnet_by_city = Vec::with_capacity(n_cities);
            for city in 0..n_cities as u32 {
                let loc = topo.city_location(city);
                let best = onnet
                    .iter()
                    .min_by(|(_, a), (_, b)| {
                        topo.city_location(a.city)
                            .distance_km(loc)
                            .total_cmp(&topo.city_location(b.city).distance_km(loc))
                            .then(a.addr.cmp(&b.addr))
                    })
                    .map(|(i, _)| *i as u32)
                    // `endpoints` is asserted non-empty above and `onnet`
                    // falls back to the full set, so endpoint 0 is an
                    // unreachable fallback, not a behaviour change.
                    .unwrap_or(0);
                nearest_onnet_by_city.push(best);
            }

            let vip = if s.mode == DeliveryMode::Anycast {
                let hosting: Vec<_> = topo
                    .prefixes
                    .owned_by(serving)
                    .iter()
                    .filter(|&&p| topo.prefixes.get(p).kind == PrefixKind::Hosting)
                    .collect();
                let k = s.id.index() % hosting.len();
                let off = 100 + (s.id.index() / hosting.len()) as u32;
                Some(topo.prefixes.get(*hosting[k]).net.addr(off.min(250)))
            } else {
                None
            };

            per_service.push(ServiceFrontends {
                endpoints,
                offnet_by_host,
                nearest_onnet_by_city,
                vip,
            });
        }
        FrontendDirectory { per_service }
    }

    /// Candidate endpoints for a service.
    pub fn endpoints(&self, s: ServiceId) -> &[Endpoint] {
        &self.per_service[s.index()].endpoints
    }

    /// The anycast VIP (only for anycast-mode services).
    pub fn vip(&self, s: ServiceId) -> Option<Ipv4Addr> {
        self.per_service[s.index()].vip
    }

    /// The redirection policy: the endpoint a client in `client_as`,
    /// located in `client_city`, is directed to.
    ///
    /// 1. An off-net inside the client's own AS wins (serving from inside
    ///    the access network is why off-nets exist).
    /// 2. Otherwise the geodesically nearest on-net PoP (ties broken by
    ///    address for determinism).
    #[inline]
    pub fn select(
        &self,
        _topo: &Topology,
        s: ServiceId,
        client_as: Asn,
        client_city: u32,
    ) -> &Endpoint {
        let sf = &self.per_service[s.index()];
        if let Some(&i) = sf.offnet_by_host.get(&client_as) {
            return &sf.endpoints[i as usize];
        }
        &sf.endpoints[sf.nearest_onnet_by_city[client_city as usize] as usize]
    }

    /// Re-home a service: rotate every city's nearest-endpoint choice
    /// `shift` positions through the service's on-net endpoint list — the
    /// epoch engine's model of an operator remapping cities onto
    /// different front-ends (capacity moves, maintenance drains). The
    /// endpoint *set* is unchanged, so TLS certificates, off-net
    /// preference, and anycast VIPs are unaffected; only the
    /// nearest-on-net selection table moves. A no-op for services with a
    /// single on-net endpoint (`shift` wraps onto the same index).
    pub fn rehome_service(&mut self, s: ServiceId, shift: u32) {
        let sf = &mut self.per_service[s.index()];
        let onnet: Vec<u32> = {
            let on: Vec<u32> = sf
                .endpoints
                .iter()
                .enumerate()
                .filter(|(_, e)| e.offnet_host.is_none())
                .map(|(i, _)| i as u32)
                .collect();
            if on.is_empty() {
                (0..sf.endpoints.len() as u32).collect()
            } else {
                on
            }
        };
        for slot in &mut sf.nearest_onnet_by_city {
            // Rotate within the on-net list; entries already pointing
            // outside it (impossible by construction) are left alone.
            if let Some(pos) = onnet.iter().position(|&i| i == *slot) {
                *slot = onnet[(pos + shift as usize) % onnet.len()];
            }
        }
    }

    /// Nearest on-net endpoint to a city (used when the resolver hides the
    /// client: non-ECS answers are computed from the resolver PoP's city).
    #[inline]
    pub fn select_by_city(&self, _topo: &Topology, s: ServiceId, city: u32) -> &Endpoint {
        let sf = &self.per_service[s.index()];
        &sf.endpoints[sf.nearest_onnet_by_city[city as usize] as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use itm_topology::{generate, TopologyConfig};
    use itm_traffic::ServiceCatalogConfig;
    use itm_types::SeedDomain;

    fn setup() -> (Topology, ServiceCatalog, FrontendDirectory) {
        let t = generate(&TopologyConfig::small(), 31).unwrap();
        let c = ServiceCatalog::generate(&ServiceCatalogConfig::small(), &t, &SeedDomain::new(31));
        let f = FrontendDirectory::build(&t, &c);
        (t, c, f)
    }

    #[test]
    fn every_service_has_endpoints() {
        let (t, c, f) = setup();
        for s in &c.services {
            let eps = f.endpoints(s.id);
            assert!(!eps.is_empty());
            for e in eps {
                let r = t.prefixes.lookup(e.addr).expect("routed address");
                match e.offnet_host {
                    None => assert_eq!(r.owner, e.asn),
                    Some(host) => {
                        assert_eq!(r.owner, host);
                        assert_eq!(r.kind, PrefixKind::OffnetCache);
                    }
                }
            }
        }
    }

    #[test]
    fn vips_only_for_anycast() {
        let (_, c, f) = setup();
        for s in &c.services {
            assert_eq!(
                f.vip(s.id).is_some(),
                s.mode == DeliveryMode::Anycast,
                "{}",
                s.domain
            );
        }
    }

    #[test]
    fn offnet_preferred_for_hosted_clients() {
        let (t, c, f) = setup();
        let (svc, host) = c
            .services
            .iter()
            .find_map(|s| match s.owner {
                ServiceOwner::Hypergiant(hg) => {
                    t.offnets.of_hypergiant(hg).next().map(|d| (s, d.host))
                }
                _ => None,
            })
            .expect("some hypergiant service with off-nets");
        let city = t.as_info(host).cities[0];
        let e = f.select(&t, svc.id, host, city);
        assert_eq!(e.offnet_host, Some(host));
    }

    #[test]
    fn non_hosted_clients_get_nearest_onnet() {
        let (t, c, f) = setup();
        let svc = &c.services[0];
        let stub = t
            .ases
            .iter()
            .find(|a| a.class == itm_topology::AsClass::Stub)
            .unwrap();
        let e = f.select(&t, svc.id, stub.asn, stub.cities[0]);
        assert_eq!(e.offnet_host, None);
        let loc = t.city_location(stub.cities[0]);
        for other in f
            .endpoints(svc.id)
            .iter()
            .filter(|x| x.offnet_host.is_none())
        {
            assert!(
                t.city_location(e.city).distance_km(loc)
                    <= t.city_location(other.city).distance_km(loc) + 1e-9
            );
        }
    }

    #[test]
    fn select_matches_select_by_city_for_unhosted() {
        let (t, c, f) = setup();
        let svc = &c.services[0];
        let stub = t
            .ases
            .iter()
            .find(|a| a.class == itm_topology::AsClass::Stub)
            .unwrap();
        assert_eq!(
            f.select(&t, svc.id, stub.asn, stub.cities[0]),
            f.select_by_city(&t, svc.id, stub.cities[0])
        );
    }

    #[test]
    fn select_is_deterministic() {
        let (t, c, f) = setup();
        let svc = &c.services[1];
        let a = t.ases[40].asn;
        let city = t.ases[40].cities[0];
        assert_eq!(f.select(&t, svc.id, a, city), f.select(&t, svc.id, a, city));
    }
}
