//! Recursive resolvers: who resolves for whom.
//!
//! Each AS with users operates an ISP resolver; every user prefix splits
//! its queries between that resolver and the open resolver, with an
//! adoption fraction that varies by country ("Usage of both Google Public
//! DNS and Chromium may be skewed", §3.1.3). A configurable fraction of
//! ASes outsource their resolver to another AS entirely, violating the
//! "clients are in the same AS as their recursive resolver" assumption the
//! root-log technique needs — the D2 ablation knob.

use itm_topology::{AsClass, PrefixKind, Topology};
use itm_types::rng::SeedDomain;
use itm_types::{Asn, FaultInjector, Ipv4Addr, PrefixId};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Identifier of an ISP resolver (dense).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct ResolverId(pub u32);

/// Configuration of the resolver ecosystem.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ResolverConfig {
    /// Fraction of eyeball/stub ASes whose "ISP resolver" actually lives
    /// in a different AS (an upstream or a commercial DNS outsourcer).
    pub offnet_resolver_fraction: f64,
    /// Per-prefix jitter (σ, logit scale) applied to the country-level
    /// open-resolver adoption rate.
    pub adoption_jitter: f64,
    /// Base probability that a *small* network's resolver is a forwarder
    /// to the open resolver rather than a full recursive. Forwarders'
    /// root-bound queries egress from the open resolver's addresses, so
    /// their networks are invisible to root-log crawling — a major reason
    /// the technique reaches only ~60% of traffic in \[34\]. The effective
    /// probability has a size-independent floor plus a component that
    /// decays with network size (incumbents run their own recursion):
    /// `forwarder_base · (0.45 + 1 / (1 + size_factor))`, clamped to 1.
    pub forwarder_base: f64,
}

impl Default for ResolverConfig {
    fn default() -> Self {
        ResolverConfig {
            offnet_resolver_fraction: 0.12,
            adoption_jitter: 0.5,
            forwarder_base: 0.75,
        }
    }
}

/// One ISP resolver.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct IspResolver {
    /// Dense id.
    pub id: ResolverId,
    /// The AS whose users this resolver serves.
    pub serves: Asn,
    /// The AS the resolver host actually sits in (== `serves` unless the
    /// resolver is outsourced).
    pub located_in: Asn,
    /// Source address root servers see.
    pub addr: Ipv4Addr,
    /// Whether the resolver is a mere forwarder to the open resolver
    /// (its iterative queries egress from open-resolver addresses).
    pub forwards_to_open: bool,
}

/// The assignment of prefixes to resolvers.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ResolverAssignment {
    /// ISP resolvers, indexed by ResolverId.
    resolvers: Vec<IspResolver>,
    /// Per-AS resolver id (for ASes with users).
    by_as: Vec<Option<ResolverId>>,
    /// Per-prefix fraction of queries using the open resolver (0 for
    /// non-user prefixes).
    open_share: Vec<f64>,
}

impl ResolverAssignment {
    /// Build the resolver ecosystem.
    pub fn build(topo: &Topology, cfg: &ResolverConfig, seeds: &SeedDomain) -> ResolverAssignment {
        let seeds = seeds.child("resolvers");
        let mut rng = seeds.rng("isp");
        let mut resolvers = Vec::new();
        let mut by_as = vec![None; topo.n_ases()];

        // Candidate outsourcing hosts: transit providers.
        let transits: Vec<Asn> = topo
            .ases_of_class(AsClass::Transit)
            .map(|a| a.asn)
            .collect();

        for a in &topo.ases {
            if !matches!(a.class, AsClass::Eyeball | AsClass::Stub) {
                continue;
            }
            let outsourced = rng.gen_bool(cfg.offnet_resolver_fraction.clamp(0.0, 1.0));
            let located_in = if outsourced && !transits.is_empty() {
                transits[rng.gen_range(0..transits.len())]
            } else {
                a.asn
            };
            // Resolver address: inside the hosting AS's space. Distinct
            // hosts get distinct addresses even when outsourced to the
            // same provider (offset 53 + a per-resolver sub-index), so
            // root logs can tell the tenant resolvers apart.
            let host_prefixes = topo.prefixes.owned_by(located_in);
            let sub = resolvers.len() as u32;
            let addr = host_prefixes
                .get(sub as usize % host_prefixes.len().max(1))
                .map(|&p| {
                    topo.prefixes
                        .get(p)
                        .net
                        .addr(53 + sub / host_prefixes.len().max(1) as u32 % 150)
                })
                .unwrap_or(Ipv4Addr::new(127, 0, 0, 53));
            // Size-dependent plus a size-independent floor: even large
            // ISPs increasingly outsource recursion to public DNS.
            let p_forward =
                (cfg.forwarder_base * (0.45 + 1.0 / (1.0 + a.size_factor))).clamp(0.0, 1.0);
            let forwards_to_open = rng.gen_bool(p_forward);
            let id = ResolverId(resolvers.len() as u32);
            itm_obs::trace::emit(
                itm_obs::trace::Technique::Resolvers,
                itm_obs::trace::EventKind::ResolverAssigned,
                itm_obs::trace::Subjects::none()
                    .asn(a.asn.raw())
                    .addr(addr.0),
                if forwards_to_open {
                    "forwarder"
                } else {
                    "recursive"
                },
            );
            resolvers.push(IspResolver {
                id,
                serves: a.asn,
                located_in,
                addr,
                forwards_to_open,
            });
            by_as[a.asn.index()] = Some(id);
        }

        // Per-prefix open-resolver share: country adoption with jitter.
        let mut open_share = vec![0.0; topo.prefixes.len()];
        for r in topo.prefixes.iter() {
            if r.kind != PrefixKind::UserAccess {
                continue;
            }
            let country = topo.as_info(r.owner).home_country;
            let base = topo.world.country(country).open_resolver_adoption;
            let mut prng = seeds.rng_indexed("adoption", r.id.raw() as u64);
            // Jitter on the logit scale keeps the share in (0, 1).
            let logit =
                (base / (1.0 - base)).ln() + cfg.adoption_jitter * (prng.gen::<f64>() * 2.0 - 1.0);
            open_share[r.id.index()] = 1.0 / (1.0 + (-logit).exp());
        }

        ResolverAssignment {
            resolvers,
            by_as,
            open_share,
        }
    }

    /// All ISP resolvers.
    pub fn resolvers(&self) -> &[IspResolver] {
        &self.resolvers
    }

    /// The resolver serving an AS's users, if it has one.
    pub fn resolver_of(&self, asn: Asn) -> Option<&IspResolver> {
        self.by_as[asn.index()].map(|id| &self.resolvers[id.0 as usize])
    }

    /// Fraction of a prefix's queries that go to the open resolver.
    pub fn open_share(&self, p: PrefixId) -> f64 {
        self.open_share[p.index()]
    }

    /// Fraction going to the ISP resolver.
    pub fn isp_share(&self, p: PrefixId) -> f64 {
        let s = self.open_share[p.index()];
        if s > 0.0 {
            1.0 - s
        } else {
            0.0
        }
    }

    /// Re-draw the open-resolver adoption share for every user prefix
    /// owned by one of `ases` — the epoch engine's resolver-churn hook
    /// (operators switch default resolvers, national campaigns shift
    /// public-DNS uptake). Draws are keyed by prefix id under the caller's
    /// epoch-scoped domain, so the same epoch re-drawn twice lands on the
    /// same shares and prefixes outside `ases` are untouched. Non-user
    /// prefixes never acquire a share.
    pub fn churn_adoption(
        &mut self,
        topo: &Topology,
        ases: &BTreeSet<Asn>,
        jitter: f64,
        epoch_seeds: &SeedDomain,
    ) {
        for r in topo.prefixes.iter() {
            if r.kind != PrefixKind::UserAccess || !ases.contains(&r.owner) {
                continue;
            }
            let country = topo.as_info(r.owner).home_country;
            let base = topo.world.country(country).open_resolver_adoption;
            let mut prng = epoch_seeds.rng_indexed("adoption", r.id.raw() as u64);
            let logit = (base / (1.0 - base)).ln() + jitter * (prng.gen::<f64>() * 2.0 - 1.0);
            self.open_share[r.id.index()] = 1.0 / (1.0 + (-logit).exp());
        }
    }

    /// Source addresses of ISP resolvers that churn away under the given
    /// fault plan — hosts rebooted, renumbered, or decommissioned
    /// mid-campaign. Root-log crawling loses every log line such a
    /// resolver would have contributed. Draws are keyed by the resolver's
    /// dense id, so the churned set is identical across runs, shards, and
    /// thread counts.
    pub fn churned_sources(&self, faults: &FaultInjector) -> BTreeSet<Ipv4Addr> {
        if faults.is_off() {
            return BTreeSet::new();
        }
        self.resolvers
            .iter()
            .filter(|r| faults.churned(r.id.0 as u64))
            .map(|r| {
                itm_obs::counter!("faults.resolver.churned").inc();
                r.addr
            })
            .collect()
    }

    /// Overall open-resolver query share, weighted by a per-prefix weight
    /// function (e.g. user counts) — calibration hook for the "30-35% of
    /// DNS queries" figure \[16\].
    pub fn global_open_share(&self, weight: impl Fn(PrefixId) -> f64) -> f64 {
        let mut num = 0.0;
        let mut den = 0.0;
        for (i, &s) in self.open_share.iter().enumerate() {
            let w = weight(PrefixId(i as u32));
            num += w * s;
            den += w;
        }
        if den > 0.0 {
            num / den
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use itm_topology::{generate, TopologyConfig};

    fn setup(offnet: f64) -> (Topology, ResolverAssignment) {
        let t = generate(&TopologyConfig::small(), 41).unwrap();
        let cfg = ResolverConfig {
            offnet_resolver_fraction: offnet,
            ..Default::default()
        };
        let r = ResolverAssignment::build(&t, &cfg, &SeedDomain::new(41));
        (t, r)
    }

    #[test]
    fn every_access_as_has_a_resolver() {
        let (t, r) = setup(0.1);
        for a in &t.ases {
            let should = matches!(a.class, AsClass::Eyeball | AsClass::Stub);
            assert_eq!(r.resolver_of(a.asn).is_some(), should, "{}", a.asn);
        }
    }

    #[test]
    fn zero_offnet_keeps_resolvers_home() {
        let (_, r) = setup(0.0);
        for res in r.resolvers() {
            assert_eq!(res.serves, res.located_in);
        }
    }

    #[test]
    fn offnet_fraction_moves_resolvers() {
        let (_, r) = setup(0.5);
        let moved = r
            .resolvers()
            .iter()
            .filter(|res| res.serves != res.located_in)
            .count();
        let frac = moved as f64 / r.resolvers().len() as f64;
        assert!(frac > 0.3 && frac < 0.7, "moved fraction {frac}");
    }

    #[test]
    fn open_share_only_for_user_prefixes() {
        let (t, r) = setup(0.1);
        for rec in t.prefixes.iter() {
            let s = r.open_share(rec.id);
            if rec.kind == PrefixKind::UserAccess {
                assert!(s > 0.0 && s < 1.0, "share {s}");
                assert!((r.isp_share(rec.id) + s - 1.0).abs() < 1e-12);
            } else {
                assert_eq!(s, 0.0);
                assert_eq!(r.isp_share(rec.id), 0.0);
            }
        }
    }

    #[test]
    fn global_share_is_plausible() {
        let (_, r) = setup(0.1);
        let share = r.global_open_share(|_| 1.0);
        // Country adoptions are drawn in [0.10, 0.65]; the mean should sit
        // inside that band (the paper cites 30-35% for Google Public DNS).
        assert!(share > 0.1 && share < 0.65, "global share {share}");
    }

    #[test]
    fn resolver_addresses_live_in_host_as() {
        let (t, r) = setup(0.3);
        for res in r.resolvers() {
            if let Some(p) = t.prefixes.lookup(res.addr) {
                assert_eq!(p.owner, res.located_in);
            }
        }
    }

    #[test]
    fn deterministic() {
        let (_, a) = setup(0.12);
        let (_, b) = setup(0.12);
        assert_eq!(a.resolvers().len(), b.resolvers().len());
        for (x, y) in a.resolvers().iter().zip(b.resolvers()) {
            assert_eq!(x.addr, y.addr);
            assert_eq!(x.located_in, y.located_in);
        }
    }
}
