//! Authoritative DNS for the service catalogue.
//!
//! A resolver querying a service's authoritative server gets a redirection
//! answer. If the service supports EDNS0 Client Subnet and the resolver
//! attached an ECS option, the answer (and its cache scope) is computed for
//! the *client's* /24; otherwise the answer is computed from the resolver's
//! own location — the precision loss that makes ECS adoption matter
//! (§3.2.1: approaches "are limited by available vantage points because
//! each only discovers the mapping based on its location").

use crate::frontends::FrontendDirectory;
use itm_topology::Topology;
use itm_traffic::{DeliveryMode, ServiceCatalog};
use itm_types::{FaultInjector, Ipv4Addr, Ipv4Net, ProbeFate, ServiceId};
use serde::{Deserialize, Serialize};

/// The scope of a DNS answer: which clients it is valid (cacheable) for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AnswerScope {
    /// Valid only for the ECS /24 it was computed for.
    ClientPrefix(Ipv4Net),
    /// Valid for anyone behind the querying resolver/PoP.
    ResolverWide,
}

/// A DNS answer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DnsAnswer {
    /// The address handed to the client.
    pub addr: Ipv4Addr,
    /// Cache scope.
    pub scope: AnswerScope,
    /// TTL in seconds.
    pub ttl_secs: u32,
}

/// The authoritative servers of every service, as one queryable object.
#[derive(Debug, Clone)]
pub struct AuthoritativeDns<'a> {
    topo: &'a Topology,
    catalog: &'a ServiceCatalog,
    frontends: &'a FrontendDirectory,
}

impl<'a> AuthoritativeDns<'a> {
    /// Bind authoritative behaviour to a topology and catalogue.
    pub fn new(
        topo: &'a Topology,
        catalog: &'a ServiceCatalog,
        frontends: &'a FrontendDirectory,
    ) -> Self {
        AuthoritativeDns {
            topo,
            catalog,
            frontends,
        }
    }

    /// Resolve `service` for a query arriving from a resolver located in
    /// `resolver_city`, optionally carrying an ECS option for a client
    /// /24. This is the full redirection logic of §3.2:
    ///
    /// * anycast services always return the VIP (scope: anyone);
    /// * ECS-supporting services with an ECS option return the per-client
    ///   endpoint, scoped to the client /24;
    /// * everything else returns the endpoint nearest the *resolver*,
    ///   scoped resolver-wide.
    pub fn resolve(
        &self,
        service: ServiceId,
        resolver_city: u32,
        ecs: Option<Ipv4Net>,
    ) -> DnsAnswer {
        if ecs.is_some() {
            itm_obs::counter!("dns.auth.queries", "ecs" => "true").inc();
        } else {
            itm_obs::counter!("dns.auth.queries", "ecs" => "false").inc();
        }
        let s = self.catalog.get(service);
        if s.mode == DeliveryMode::Anycast {
            // Every anycast service gets a VIP at directory build time; a
            // VIP-less one degrades to the unicast redirection path below
            // instead of panicking.
            if let Some(addr) = self.frontends.vip(service) {
                itm_obs::trace::emit(
                    itm_obs::trace::Technique::Dns,
                    itm_obs::trace::EventKind::AuthAnswer,
                    itm_obs::trace::Subjects::none()
                        .service(service.raw())
                        .addr(addr.0),
                    "anycast-vip",
                );
                return DnsAnswer {
                    addr,
                    scope: AnswerScope::ResolverWide,
                    ttl_secs: s.ttl_secs,
                };
            }
        }
        let ans = match ecs {
            Some(client_net) if s.ecs_support => {
                // Locate the client prefix in the ground truth to apply
                // the true redirection policy.
                match self.topo.prefixes.find(client_net) {
                    Some(r) => {
                        let e = self.frontends.select(self.topo, service, r.owner, r.city);
                        DnsAnswer {
                            addr: e.addr,
                            scope: AnswerScope::ClientPrefix(client_net),
                            ttl_secs: s.ttl_secs,
                        }
                    }
                    None => {
                        // Unrouted ECS prefix: answer from resolver locale,
                        // but still scope it to the (bogus) client net, as
                        // real ECS servers do.
                        let e = self
                            .frontends
                            .select_by_city(self.topo, service, resolver_city);
                        DnsAnswer {
                            addr: e.addr,
                            scope: AnswerScope::ClientPrefix(client_net),
                            ttl_secs: s.ttl_secs,
                        }
                    }
                }
            }
            _ => {
                let e = self
                    .frontends
                    .select_by_city(self.topo, service, resolver_city);
                DnsAnswer {
                    addr: e.addr,
                    scope: AnswerScope::ResolverWide,
                    ttl_secs: s.ttl_secs,
                }
            }
        };
        itm_obs::trace::emit(
            itm_obs::trace::Technique::Dns,
            itm_obs::trace::EventKind::AuthAnswer,
            itm_obs::trace::Subjects::none()
                .service(service.raw())
                .addr(ans.addr.0),
            match ans.scope {
                AnswerScope::ClientPrefix(_) => "ecs-scoped",
                AnswerScope::ResolverWide => "resolver-wide",
            },
        );
        ans
    }

    /// [`AuthoritativeDns::resolve`] under fault injection: the
    /// authoritative server may *refuse* the query (loss and timeouts
    /// belong to the resolver hop, so only the plan's refusal rate
    /// applies here). Refusals are retried per the plan's policy; when
    /// retries exhaust, the answer is dropped and a `ProbeFailed` trace
    /// event records the gap. `client_key` is a stable identifier of the
    /// querying client (prefix raw id) so the draw is entity-keyed.
    pub fn resolve_with_faults(
        &self,
        service: ServiceId,
        resolver_city: u32,
        ecs: Option<Ipv4Net>,
        faults: &FaultInjector,
        client_key: u64,
    ) -> (Option<DnsAnswer>, ProbeFate) {
        if faults.is_off() {
            return (
                Some(self.resolve(service, resolver_city, ecs)),
                ProbeFate::Observed,
            );
        }
        let fate = faults.refusal_fate(service.raw() as u64, client_key, resolver_city as u64);
        let subjects = || {
            let mut s = itm_obs::trace::Subjects::none().service(service.raw());
            if let Some(net) = ecs {
                if let Some(rec) = self.topo.prefixes.find(net) {
                    s = s.prefix(rec.id.raw());
                }
            }
            s
        };
        match fate {
            ProbeFate::Observed => {}
            ProbeFate::Degraded { retries } => {
                itm_obs::counter!("faults.auth.retried").inc();
                itm_obs::trace::emit(
                    itm_obs::trace::Technique::Dns,
                    itm_obs::trace::EventKind::ProbeRetried,
                    subjects(),
                    &format!(
                        "refused, retries={retries} backoff={}s",
                        faults.total_backoff_secs(service.raw() as u64 ^ client_key, retries)
                    ),
                );
            }
            ProbeFate::Lost => {
                itm_obs::counter!("faults.auth.lost").inc();
                itm_obs::trace::emit(
                    itm_obs::trace::Technique::Dns,
                    itm_obs::trace::EventKind::ProbeFailed,
                    subjects(),
                    "refused on every attempt",
                );
                return (None, ProbeFate::Lost);
            }
        }
        (Some(self.resolve(service, resolver_city, ecs)), fate)
    }

    /// The domain → service lookup for query parsing.
    pub fn service_for_domain(&self, domain: &str) -> Option<ServiceId> {
        self.catalog.by_domain(domain).map(|s| s.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use itm_topology::{generate, TopologyConfig};
    use itm_traffic::{ServiceCatalogConfig, ServiceOwner};
    use itm_types::SeedDomain;

    struct Fixture {
        topo: Topology,
        catalog: ServiceCatalog,
        frontends: FrontendDirectory,
    }

    fn fixture() -> Fixture {
        let topo = generate(&TopologyConfig::small(), 37).unwrap();
        let catalog =
            ServiceCatalog::generate(&ServiceCatalogConfig::small(), &topo, &SeedDomain::new(37));
        let frontends = FrontendDirectory::build(&topo, &catalog);
        Fixture {
            topo,
            catalog,
            frontends,
        }
    }

    #[test]
    fn anycast_services_return_vip() {
        let f = fixture();
        let auth = AuthoritativeDns::new(&f.topo, &f.catalog, &f.frontends);
        let any = f
            .catalog
            .services
            .iter()
            .find(|s| s.mode == DeliveryMode::Anycast)
            .expect("an anycast service exists");
        let ans = auth.resolve(any.id, 0, None);
        assert_eq!(Some(ans.addr), f.frontends.vip(any.id));
        assert_eq!(ans.scope, AnswerScope::ResolverWide);
        // ECS does not change the answer.
        let some_net = f.topo.prefixes.get(itm_types::PrefixId(0)).net;
        let ans2 = auth.resolve(any.id, 0, Some(some_net));
        assert_eq!(ans2.addr, ans.addr);
    }

    #[test]
    fn ecs_answers_are_client_scoped_and_client_correct() {
        let f = fixture();
        let auth = AuthoritativeDns::new(&f.topo, &f.catalog, &f.frontends);
        let svc = f
            .catalog
            .services
            .iter()
            .find(|s| s.ecs_support && s.mode == DeliveryMode::DnsRedirection)
            .expect("an ECS DNS service exists");
        // Pick a user prefix.
        let r = f
            .topo
            .prefixes
            .iter()
            .find(|r| r.kind == itm_topology::PrefixKind::UserAccess)
            .unwrap();
        let ans = auth.resolve(svc.id, 0, Some(r.net));
        assert_eq!(ans.scope, AnswerScope::ClientPrefix(r.net));
        // The answer must equal the ground-truth redirection policy.
        let expect = f.frontends.select(&f.topo, svc.id, r.owner, r.city);
        assert_eq!(ans.addr, expect.addr);
        assert_eq!(ans.ttl_secs, svc.ttl_secs);
    }

    #[test]
    fn non_ecs_services_answer_from_resolver_city() {
        let f = fixture();
        let auth = AuthoritativeDns::new(&f.topo, &f.catalog, &f.frontends);
        let svc = f
            .catalog
            .services
            .iter()
            .find(|s| !s.ecs_support && s.mode == DeliveryMode::DnsRedirection)
            .expect("a non-ECS DNS service exists");
        let r = f
            .topo
            .prefixes
            .iter()
            .find(|r| r.kind == itm_topology::PrefixKind::UserAccess)
            .unwrap();
        // ECS supplied but ignored.
        let city = f.topo.ases[0].cities[0];
        let with_ecs = auth.resolve(svc.id, city, Some(r.net));
        let without = auth.resolve(svc.id, city, None);
        assert_eq!(with_ecs.addr, without.addr);
        assert_eq!(with_ecs.scope, AnswerScope::ResolverWide);
    }

    #[test]
    fn offnet_answer_for_hosted_client() {
        let f = fixture();
        let auth = AuthoritativeDns::new(&f.topo, &f.catalog, &f.frontends);
        // An ECS hypergiant service + a host of that hypergiant's off-nets.
        let target = f.catalog.services.iter().find_map(|s| {
            if !s.ecs_support || s.mode != DeliveryMode::DnsRedirection {
                return None;
            }
            match s.owner {
                ServiceOwner::Hypergiant(hg) => f
                    .topo
                    .offnets
                    .of_hypergiant(hg)
                    .next()
                    .map(|d| (s, d.host, d.prefix)),
                _ => None,
            }
        });
        let Some((svc, host, _)) = target else {
            // Seeds might not produce the combination in a tiny topology;
            // the frontends tests cover select() itself.
            return;
        };
        // Query with ECS for one of the host's user prefixes.
        let client = f
            .topo
            .prefixes
            .owned_by(host)
            .iter()
            .map(|&p| f.topo.prefixes.get(p))
            .find(|r| r.kind == itm_topology::PrefixKind::UserAccess)
            .unwrap();
        let ans = auth.resolve(svc.id, 0, Some(client.net));
        let answered = f.topo.prefixes.lookup(ans.addr).unwrap();
        assert_eq!(answered.owner, host, "client not served from its off-net");
        assert_eq!(answered.kind, itm_topology::PrefixKind::OffnetCache);
    }

    #[test]
    fn unrouted_ecs_prefix_falls_back() {
        let f = fixture();
        let auth = AuthoritativeDns::new(&f.topo, &f.catalog, &f.frontends);
        let svc = f
            .catalog
            .services
            .iter()
            .find(|s| s.ecs_support && s.mode == DeliveryMode::DnsRedirection)
            .unwrap();
        let bogus: Ipv4Net = "203.0.113.0/24".parse().unwrap();
        let ans = auth.resolve(svc.id, 0, Some(bogus));
        assert_eq!(ans.scope, AnswerScope::ClientPrefix(bogus));
    }

    #[test]
    fn domain_lookup() {
        let f = fixture();
        let auth = AuthoritativeDns::new(&f.topo, &f.catalog, &f.frontends);
        assert_eq!(
            auth.service_for_domain("svc0.example"),
            Some(itm_types::ServiceId(0))
        );
        assert_eq!(auth.service_for_domain("no-such.example"), None);
    }
}
