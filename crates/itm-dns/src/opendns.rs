//! The open-resolver (Google Public DNS analogue) with probeable caches.
//!
//! §3.1.2, approach 1: "We issued non-recursive queries for popular domains
//! to Google Public DNS … to determine if the popular domains were in the
//! cache. … we used the EDNS0 Client Subnet (ECS) option, which enables
//! specifying a client prefix, causing Google Public DNS to only return a
//! result if a client from that prefix recently queried for the domain."
//!
//! The model: the open resolver operates PoPs in major cities; each user
//! prefix's open-resolver queries land at its nearest PoP; each PoP keeps a
//! cache keyed by `(service, scope)` where the scope is the client /24 for
//! ECS-supporting services and PoP-wide otherwise. Organic traffic fills
//! the caches; probes with `RD=0` read them without filling them.
//!
//! Two equivalent interfaces are provided:
//!
//! * [`CacheSim`] — a real insert/expire cache for event-level tests.
//! * [`OpenResolver::probe`] — the *analytic oracle*: occupancy of a cache
//!   entry during a TTL window is a deterministic Bernoulli draw with the
//!   Poisson no-arrival probability `1 − exp(−rate·TTL)`. Within a window
//!   the outcome is fixed (as a real cache's would be), across windows it
//!   redraws. This makes a full Internet sweep O(prefixes × domains)
//!   without any simulation time stepping.

use crate::authoritative::{AuthoritativeDns, DnsAnswer};
use crate::resolvers::ResolverAssignment;
use itm_topology::Topology;
use itm_traffic::{ServiceCatalog, TrafficModel, UserModel};
use itm_types::rng::stable_hash;
use itm_types::{
    FaultInjector, GeoPoint, Ipv4Addr, Ipv4Net, ItmError, PopId, PrefixId, ProbeFate, SeedDomain,
    ServiceId, SimTime,
};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Mean bits transferred per user session-with-DNS-lookup; converts demand
/// (bps) into DNS query rate (qps).
pub const BITS_PER_SESSION: f64 = 4.0e7;

/// Open-resolver deployment parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OpenResolverConfig {
    /// Number of PoPs (placed in the largest global cities).
    pub n_pops: usize,
    /// Background query noise (qps) per (routed prefix, popular domain):
    /// scanners, bots, misconfigured hosts. Produces the small
    /// false-positive rate real cache probing observes (<1% in \[34\]).
    pub noise_qps: f64,
}

impl Default for OpenResolverConfig {
    fn default() -> Self {
        OpenResolverConfig {
            n_pops: 12,
            noise_qps: 2.0e-7,
        }
    }
}

/// One open-resolver PoP.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Pop {
    /// Dense id.
    pub id: PopId,
    /// City (world index).
    pub city: u32,
    /// Location (cached).
    pub location: GeoPoint,
}

/// Outcome of a non-recursive cache probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProbeResult {
    /// The entry was cached: someone behind that scope queried recently.
    Hit(Ipv4Addr),
    /// Not cached.
    Miss,
    /// Unknown domain.
    NxDomain,
}

/// The open resolver bound to a substrate.
pub struct OpenResolver<'a> {
    topo: &'a Topology,
    users: &'a UserModel,
    catalog: &'a ServiceCatalog,
    traffic: &'a TrafficModel,
    resolvers: &'a ResolverAssignment,
    auth: AuthoritativeDns<'a>,
    cfg: OpenResolverConfig,
    pops: Vec<Pop>,
    /// PoP serving each prefix (nearest by geography).
    pop_of_prefix: Vec<PopId>,
    /// Per-(pop, service) aggregate daily-mean qps for PoP-wide scopes.
    pop_service_qps: Vec<f64>,
    /// Occupancy draw seed.
    draw_seed: u64,
}

impl<'a> OpenResolver<'a> {
    /// Deploy the open resolver.
    ///
    /// Fails with [`ItmError::InvalidConfig`] when the topology has no
    /// cities to site PoPs in.
    #[allow(clippy::too_many_arguments)]
    pub fn deploy(
        topo: &'a Topology,
        users: &'a UserModel,
        catalog: &'a ServiceCatalog,
        traffic: &'a TrafficModel,
        resolvers: &'a ResolverAssignment,
        auth: AuthoritativeDns<'a>,
        cfg: OpenResolverConfig,
        seeds: &SeedDomain,
    ) -> Result<OpenResolver<'a>, ItmError> {
        let seeds = seeds.child("opendns");
        // PoPs in the biggest cities (by size × country weight).
        let mut ranked: Vec<(u32, f64)> = topo
            .world
            .cities
            .iter()
            .map(|c| {
                (
                    c.id,
                    c.size_weight * topo.world.country(c.country).population_weight,
                )
            })
            .collect();
        ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        let pops: Vec<Pop> = ranked
            .iter()
            .take(cfg.n_pops.max(1))
            .enumerate()
            .map(|(i, &(city, _))| Pop {
                id: PopId(i as u32),
                city,
                location: topo.city_location(city),
            })
            .collect();

        // Nearest-PoP assignment per prefix.
        let mut pop_of_prefix = Vec::with_capacity(topo.prefixes.len());
        for r in topo.prefixes.iter() {
            let loc = topo.city_location(r.city);
            let best = pops
                .iter()
                .min_by(|a, b| {
                    a.location
                        .distance_km(loc)
                        .total_cmp(&b.location.distance_km(loc))
                        .then(a.id.cmp(&b.id))
                })
                .ok_or_else(|| ItmError::InvalidConfig {
                    field: "world.cities",
                    reason: "open resolver needs at least one city to site PoPs".into(),
                })?;
            pop_of_prefix.push(best.id);
        }

        // Aggregate PoP-wide rates per service (for non-ECS scopes).
        let n_s = catalog.len();
        let mut pop_service_qps = vec![0.0; pops.len() * n_s];
        for r in topo.prefixes.iter() {
            if users.users_of(r.id) <= 0.0 {
                continue;
            }
            let share = resolvers.open_share(r.id);
            if share <= 0.0 {
                continue;
            }
            let pop = pop_of_prefix[r.id.index()].index();
            for s in &catalog.services {
                let qps = traffic.demand(topo, users, catalog, r.id, s.id).raw() * share
                    / BITS_PER_SESSION;
                pop_service_qps[pop * n_s + s.id.index()] += qps;
            }
        }

        Ok(OpenResolver {
            topo,
            users,
            catalog,
            traffic,
            resolvers,
            auth,
            cfg,
            pops,
            pop_of_prefix,
            pop_service_qps,
            draw_seed: seeds.seed("occupancy"),
        })
    }

    /// The deployed PoPs.
    pub fn pops(&self) -> &[Pop] {
        &self.pops
    }

    /// The PoP a prefix's clients use.
    pub fn pop_of(&self, p: PrefixId) -> PopId {
        self.pop_of_prefix[p.index()]
    }

    /// The AS operating the open resolver (the largest hypergiant — the
    /// Google analogue).
    pub fn operator(&self) -> itm_types::Asn {
        self.topo.hypergiants()[0]
    }

    /// The egress address a PoP uses when querying authoritative/root
    /// servers — what root logs record for open-resolver clients. Drawn
    /// from the operator's hosting space (offset 8, per PoP index).
    pub fn pop_egress_addr(&self, pop: PopId) -> Ipv4Addr {
        let op = self.operator();
        let hosting: Vec<_> = self
            .topo
            .prefixes
            .owned_by(op)
            .iter()
            .filter(|&&p| self.topo.prefixes.get(p).kind == itm_topology::PrefixKind::Hosting)
            .collect();
        assert!(!hosting.is_empty(), "operator has hosting space");
        let k = pop.index() % hosting.len();
        let off = 8 + (pop.index() / hosting.len()) as u32;
        self.topo.prefixes.get(*hosting[k]).net.addr(off.min(9))
    }

    /// Organic open-resolver query rate for (prefix, service) at time `t`,
    /// including the background noise floor.
    pub fn query_rate(&self, p: PrefixId, s: ServiceId, t: SimTime) -> f64 {
        let organic = self
            .traffic
            .demand_at(self.topo, self.users, self.catalog, p, s, t)
            .raw()
            * self.resolvers.open_share(p)
            / BITS_PER_SESSION;
        organic + self.cfg.noise_qps
    }

    /// Probability that the cache entry for `(s, scope of p)` is occupied
    /// during the TTL window containing `t`.
    pub fn hit_probability(&self, p: PrefixId, s: ServiceId, t: SimTime) -> f64 {
        let svc = self.catalog.get(s);
        let ttl = svc.ttl_secs as f64;
        let rate = if svc.ecs_support {
            self.query_rate(p, s, t)
        } else {
            // PoP-wide scope: everyone behind the PoP contributes, so the
            // diurnal phase is the *PoP's*, not the probing prefix's —
            // otherwise one physical cache entry would look different to
            // probes carrying different ECS prefixes.
            let pop = self.pop_of(p).index();
            let base = self.pop_service_qps[pop * self.catalog.len() + s.index()];
            let offset = self.pops[pop].location.solar_offset_hours();
            base * self.traffic.diurnal_multiplier_at(offset, t) + self.cfg.noise_qps
        };
        1.0 - (-rate * ttl).exp()
    }

    /// Non-recursive (RD=0) ECS probe: is `domain` cached for `ecs`'s
    /// scope at the PoP serving that prefix, at time `t`?
    ///
    /// Deterministic: the same (prefix, domain, TTL-window) always gives
    /// the same outcome, as a real cache would within one window.
    pub fn probe(&self, ecs: Ipv4Net, domain: &str, t: SimTime) -> ProbeResult {
        let Some(sid) = self.auth.service_for_domain(domain) else {
            itm_obs::counter!("dns.cache.nxdomain").inc();
            return ProbeResult::NxDomain;
        };
        let Some(rec) = self.topo.prefixes.find(ecs) else {
            // Unrouted prefix: nothing organic ever cached for it.
            itm_obs::counter!("dns.cache.miss").inc();
            return ProbeResult::Miss;
        };
        let svc = self.catalog.get(sid);
        if svc.ecs_support {
            itm_obs::counter!("dns.cache.lookups", "scope" => "ecs").inc();
        } else {
            itm_obs::counter!("dns.cache.lookups", "scope" => "pop").inc();
        }
        let ttl = svc.ttl_secs.max(1) as u64;
        let window = t.as_secs() / ttl;
        // Evaluate occupancy at the window start so the outcome is truly
        // constant across the whole TTL window, matching a real cache.
        let p_hit = self.hit_probability(rec.id, sid, SimTime(window * ttl));
        let key = if svc.ecs_support {
            rec.id.raw() as u64
        } else {
            // PoP-wide entry: same draw for every prefix behind the PoP.
            0x8000_0000_0000_0000 | self.pop_of(rec.id).raw() as u64
        };
        if deterministic_draw(self.draw_seed, key, sid.raw() as u64, window) < p_hit {
            itm_obs::counter!("dns.cache.hit").inc();
            // Answer as the authoritative would have for the organic query.
            let pop_city = self.pops[self.pop_of(rec.id).index()].city;
            let ecs_opt = svc.ecs_support.then_some(ecs);
            let ans = self.auth.resolve(sid, pop_city, ecs_opt);
            itm_obs::trace::emit(
                itm_obs::trace::Technique::CacheProbe,
                itm_obs::trace::EventKind::CacheHit,
                itm_obs::trace::Subjects::none()
                    .prefix(rec.id.raw())
                    .service(sid.raw())
                    .addr(ans.addr.0)
                    .pop(self.pop_of(rec.id).raw()),
                domain,
            );
            ProbeResult::Hit(ans.addr)
        } else {
            itm_obs::counter!("dns.cache.miss").inc();
            itm_obs::trace::emit(
                itm_obs::trace::Technique::CacheProbe,
                itm_obs::trace::EventKind::CacheMiss,
                itm_obs::trace::Subjects::none()
                    .prefix(rec.id.raw())
                    .service(sid.raw())
                    .pop(self.pop_of(rec.id).raw()),
                domain,
            );
            ProbeResult::Miss
        }
    }

    /// [`OpenResolver::probe`] under fault injection. The probe's fate is
    /// keyed by `(ecs prefix, domain, round)` — stable entity identifiers,
    /// never emission order — so faulted sweeps are byte-reproducible at
    /// any thread count. A lost probe returns `None` (the campaign records
    /// the gap); a degraded one returns the *same* result a clean probe
    /// would, after virtual-time backoff.
    pub fn probe_with_faults(
        &self,
        ecs: Ipv4Net,
        domain: &str,
        t: SimTime,
        faults: &FaultInjector,
        round: u64,
    ) -> (Option<ProbeResult>, ProbeFate) {
        if faults.is_off() {
            return (Some(self.probe(ecs, domain, t)), ProbeFate::Observed);
        }
        let key_a = ecs.addr(0).0 as u64;
        let key_b = stable_hash(domain);
        let fate = faults.fate(key_a, key_b, round);
        let subjects = || {
            let mut s = itm_obs::trace::Subjects::none();
            if let Some(rec) = self.topo.prefixes.find(ecs) {
                s = s.prefix(rec.id.raw()).pop(self.pop_of(rec.id).raw());
            }
            if let Some(sid) = self.auth.service_for_domain(domain) {
                s = s.service(sid.raw());
            }
            s
        };
        match fate {
            ProbeFate::Observed => (Some(self.probe(ecs, domain, t)), fate),
            ProbeFate::Degraded { retries } => {
                itm_obs::counter!("faults.probe.retried").inc();
                itm_obs::trace::emit(
                    itm_obs::trace::Technique::CacheProbe,
                    itm_obs::trace::EventKind::ProbeRetried,
                    subjects(),
                    &format!(
                        "retries={retries} backoff={}s",
                        faults.total_backoff_secs(key_a ^ key_b, retries)
                    ),
                );
                (Some(self.probe(ecs, domain, t)), fate)
            }
            ProbeFate::Lost => {
                itm_obs::counter!("faults.probe.lost").inc();
                let kind = faults
                    .first_fault(key_a, key_b, round)
                    .map(|k| k.as_str())
                    .unwrap_or("fault");
                itm_obs::trace::emit(
                    itm_obs::trace::Technique::CacheProbe,
                    itm_obs::trace::EventKind::ProbeFailed,
                    subjects(),
                    &format!(
                        "{kind}, retries exhausted after {} attempts",
                        faults.plan().max_retries + 1
                    ),
                );
                (None, fate)
            }
        }
    }

    /// A *recursive* query as a client stub would issue (fills caches in
    /// the event-level simulation; the analytic path does not need it).
    pub fn resolve_for_client(&self, client: PrefixId, domain: &str) -> Option<DnsAnswer> {
        let sid = self.auth.service_for_domain(domain)?;
        let svc = self.catalog.get(sid);
        let rec = self.topo.prefixes.get(client);
        let pop_city = self.pops[self.pop_of(client).index()].city;
        let ecs = svc.ecs_support.then_some(rec.net);
        let ans = self.auth.resolve(sid, pop_city, ecs);
        if matches!(
            ans.scope,
            crate::authoritative::AnswerScope::ClientPrefix(_)
        ) {
            itm_obs::trace::emit(
                itm_obs::trace::Technique::EcsMapping,
                itm_obs::trace::EventKind::EcsScopedAnswer,
                itm_obs::trace::Subjects::none()
                    .prefix(client.raw())
                    .service(sid.raw())
                    .addr(ans.addr.0)
                    .pop(self.pop_of(client).raw()),
                domain,
            );
        }
        Some(ans)
    }

    /// [`OpenResolver::resolve_for_client`] under fault injection. Two
    /// hops can fault: the resolver hop (loss/timeout/refusal per the
    /// full plan) and the authoritative hop (refusals only, applied by
    /// [`AuthoritativeDns::resolve_with_faults`]). The combined fate is
    /// lost-dominant with retries added across hops.
    pub fn resolve_for_client_with_faults(
        &self,
        client: PrefixId,
        domain: &str,
        faults: &FaultInjector,
    ) -> (Option<DnsAnswer>, ProbeFate) {
        if faults.is_off() {
            return (self.resolve_for_client(client, domain), ProbeFate::Observed);
        }
        let Some(sid) = self.auth.service_for_domain(domain) else {
            // NXDOMAIN is an answer, not a fault.
            return (None, ProbeFate::Observed);
        };
        let key_a = client.raw() as u64;
        let key_b = stable_hash(domain);
        let hop = faults.fate(key_a, key_b, 0);
        if let ProbeFate::Lost = hop {
            itm_obs::counter!("faults.resolve.lost").inc();
            let kind = faults
                .first_fault(key_a, key_b, 0)
                .map(|k| k.as_str())
                .unwrap_or("fault");
            itm_obs::trace::emit(
                itm_obs::trace::Technique::EcsMapping,
                itm_obs::trace::EventKind::ProbeFailed,
                itm_obs::trace::Subjects::none()
                    .prefix(client.raw())
                    .service(sid.raw())
                    .pop(self.pop_of(client).raw()),
                &format!("{kind}, retries exhausted"),
            );
            return (None, ProbeFate::Lost);
        }
        let svc = self.catalog.get(sid);
        let rec = self.topo.prefixes.get(client);
        let pop_city = self.pops[self.pop_of(client).index()].city;
        let ecs = svc.ecs_support.then_some(rec.net);
        let (ans, auth_fate) =
            self.auth
                .resolve_with_faults(sid, pop_city, ecs, faults, client.raw() as u64);
        let combined = hop.combine(auth_fate);
        let Some(ans) = ans else {
            return (None, ProbeFate::Lost);
        };
        if let ProbeFate::Degraded { retries } = combined {
            itm_obs::counter!("faults.resolve.retried").inc();
            itm_obs::trace::emit(
                itm_obs::trace::Technique::EcsMapping,
                itm_obs::trace::EventKind::ProbeRetried,
                itm_obs::trace::Subjects::none()
                    .prefix(client.raw())
                    .service(sid.raw()),
                &format!(
                    "retries={retries} backoff={}s",
                    faults.total_backoff_secs(key_a ^ key_b, retries)
                ),
            );
        }
        if matches!(
            ans.scope,
            crate::authoritative::AnswerScope::ClientPrefix(_)
        ) {
            itm_obs::trace::emit(
                itm_obs::trace::Technique::EcsMapping,
                itm_obs::trace::EventKind::EcsScopedAnswer,
                itm_obs::trace::Subjects::none()
                    .prefix(client.raw())
                    .service(sid.raw())
                    .addr(ans.addr.0)
                    .pop(self.pop_of(client).raw()),
                domain,
            );
        }
        (Some(ans), combined)
    }
}

/// Uniform [0,1) draw, stable in all four keys.
fn deterministic_draw(seed: u64, a: u64, b: u64, c: u64) -> f64 {
    use itm_types::rng::mix64 as mix;
    let k = mix(seed ^ mix(a) ^ mix(b.rotate_left(17)) ^ mix(c.rotate_left(34)));
    (k >> 11) as f64 / (1u64 << 53) as f64
}

/// An event-level cache with real insert/expire semantics, used to check
/// that the analytic oracle's behaviour matches a concrete cache.
#[derive(Debug, Default)]
pub struct CacheSim {
    entries: HashMap<(ServiceId, CacheScopeKey), (Ipv4Addr, SimTime)>,
}

/// Cache key scope for [`CacheSim`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CacheScopeKey {
    /// Scoped to a client /24.
    Prefix(Ipv4Net),
    /// Scoped to a PoP.
    Pop(PopId),
}

impl CacheSim {
    /// Create an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert an answer observed at `now`.
    pub fn insert(&mut self, s: ServiceId, scope: CacheScopeKey, ans: &DnsAnswer, now: SimTime) {
        let expiry = SimTime(now.as_secs() + ans.ttl_secs as u64);
        self.entries.insert((s, scope), (ans.addr, expiry));
    }

    /// Look up without mutating (RD=0 semantics).
    pub fn lookup(&self, s: ServiceId, scope: CacheScopeKey, now: SimTime) -> Option<Ipv4Addr> {
        self.entries
            .get(&(s, scope))
            .filter(|(_, exp)| *exp > now)
            .map(|(a, _)| *a)
    }

    /// Drop expired entries.
    pub fn evict_expired(&mut self, now: SimTime) {
        let before = self.entries.len();
        self.entries.retain(|_, (_, exp)| *exp > now);
        itm_obs::counter!("dns.cache.evictions").add((before - self.entries.len()) as u64);
    }

    /// Live entry count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Scope key an organic query by `client` for service `s` would use.
    pub fn scope_for(
        catalog: &ServiceCatalog,
        resolver: &OpenResolver<'_>,
        s: ServiceId,
        client_net: Ipv4Net,
        client: PrefixId,
    ) -> CacheScopeKey {
        if catalog.get(s).ecs_support {
            CacheScopeKey::Prefix(client_net)
        } else {
            CacheScopeKey::Pop(resolver.pop_of(client))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::authoritative::AnswerScope;
    use crate::frontends::FrontendDirectory;
    use crate::resolvers::ResolverConfig;
    use itm_topology::{generate, PrefixKind, TopologyConfig};
    use itm_traffic::{ServiceCatalogConfig, TrafficConfig};

    struct Fixture {
        topo: Topology,
        users: UserModel,
        catalog: ServiceCatalog,
        traffic: TrafficModel,
        resolvers: ResolverAssignment,
        frontends: FrontendDirectory,
    }

    fn fixture() -> Fixture {
        let seeds = SeedDomain::new(43);
        let topo = generate(&TopologyConfig::small(), 43).unwrap();
        let users = UserModel::generate(&topo, &seeds);
        let catalog = ServiceCatalog::generate(&ServiceCatalogConfig::small(), &topo, &seeds);
        let traffic =
            TrafficModel::build(&topo, &users, &catalog, TrafficConfig::default(), &seeds);
        let resolvers = ResolverAssignment::build(&topo, &ResolverConfig::default(), &seeds);
        let frontends = FrontendDirectory::build(&topo, &catalog);
        Fixture {
            topo,
            users,
            catalog,
            traffic,
            resolvers,
            frontends,
        }
    }

    fn resolver<'a>(f: &'a Fixture) -> OpenResolver<'a> {
        let auth = AuthoritativeDns::new(&f.topo, &f.catalog, &f.frontends);
        OpenResolver::deploy(
            &f.topo,
            &f.users,
            &f.catalog,
            &f.traffic,
            &f.resolvers,
            auth,
            OpenResolverConfig {
                n_pops: 6,
                ..Default::default()
            },
            &SeedDomain::new(43),
        )
        .expect("deploy open resolver")
    }

    #[test]
    fn pops_deploy_and_cover_all_prefixes() {
        let f = fixture();
        let r = resolver(&f);
        assert_eq!(r.pops().len(), 6);
        for rec in f.topo.prefixes.iter() {
            let pop = r.pop_of(rec.id);
            assert!(pop.index() < 6);
        }
    }

    #[test]
    fn nxdomain_for_unknown_names() {
        let f = fixture();
        let r = resolver(&f);
        let net = f.topo.prefixes.get(PrefixId(0)).net;
        assert_eq!(
            r.probe(net, "not-a-service.example", SimTime::ZERO),
            ProbeResult::NxDomain
        );
    }

    #[test]
    fn unrouted_prefixes_never_hit() {
        let f = fixture();
        let r = resolver(&f);
        let bogus: Ipv4Net = "203.0.113.0/24".parse().unwrap();
        for w in 0..20 {
            let t = SimTime(w * 3600);
            assert_eq!(r.probe(bogus, "svc0.example", t), ProbeResult::Miss);
        }
    }

    #[test]
    fn busy_prefixes_hit_popular_domains() {
        let f = fixture();
        let r = resolver(&f);
        // The busiest user prefix should hit svc0 in most windows.
        let busiest = f
            .topo
            .prefixes
            .iter()
            .filter(|rec| rec.kind == PrefixKind::UserAccess)
            .max_by(|a, b| {
                f.traffic
                    .prefix_total(a.id)
                    .raw()
                    .partial_cmp(&f.traffic.prefix_total(b.id).raw())
                    .unwrap()
            })
            .unwrap();
        let mut hits = 0;
        let n = 48;
        for w in 0..n {
            let t = SimTime(w * 1800);
            if matches!(r.probe(busiest.net, "svc0.example", t), ProbeResult::Hit(_)) {
                hits += 1;
            }
        }
        assert!(hits > n / 2, "only {hits}/{n} windows hit");
    }

    #[test]
    fn probe_is_deterministic_within_a_window() {
        let f = fixture();
        let r = resolver(&f);
        let rec = f
            .topo
            .prefixes
            .iter()
            .find(|rec| rec.kind == PrefixKind::UserAccess)
            .unwrap();
        let a = r.probe(rec.net, "svc1.example", SimTime(1000));
        let b = r.probe(rec.net, "svc1.example", SimTime(1001));
        assert_eq!(a, b); // same TTL window (ttl >= 30s)
    }

    #[test]
    fn hit_probability_reflects_activity() {
        let f = fixture();
        let r = resolver(&f);
        let mut user_prefixes: Vec<_> = f
            .topo
            .prefixes
            .iter()
            .filter(|rec| rec.kind == PrefixKind::UserAccess)
            .collect();
        user_prefixes.sort_by(|a, b| {
            f.traffic
                .prefix_total(b.id)
                .raw()
                .partial_cmp(&f.traffic.prefix_total(a.id).raw())
                .unwrap()
        });
        let busy = user_prefixes.first().unwrap();
        let quiet = user_prefixes.last().unwrap();
        // Find an ECS service: probability must be higher for the busy one.
        let svc = f.catalog.services.iter().find(|s| s.ecs_support).unwrap();
        let t = SimTime(7200);
        assert!(
            r.hit_probability(busy.id, svc.id, t) > r.hit_probability(quiet.id, svc.id, t),
            "activity ordering lost"
        );
    }

    #[test]
    fn ecs_answer_matches_ground_truth_mapping() {
        let f = fixture();
        let r = resolver(&f);
        let svc = f
            .catalog
            .services
            .iter()
            .find(|s| s.ecs_support && s.mode == itm_traffic::DeliveryMode::DnsRedirection)
            .unwrap();
        // Probe every user prefix until we find a hit; its address must be
        // the ground-truth selection for that prefix.
        let mut checked = 0;
        for rec in f.topo.prefixes.iter() {
            if rec.kind != PrefixKind::UserAccess {
                continue;
            }
            for w in 0..8 {
                let t = SimTime(w * svc.ttl_secs as u64);
                if let ProbeResult::Hit(addr) = r.probe(rec.net, &svc.domain, t) {
                    let expect = f.frontends.select(&f.topo, svc.id, rec.owner, rec.city);
                    assert_eq!(addr, expect.addr);
                    checked += 1;
                    break;
                }
            }
            if checked > 10 {
                break;
            }
        }
        assert!(checked > 0, "no hits at all — model too cold");
    }

    #[test]
    fn cache_sim_semantics() {
        let mut c = CacheSim::new();
        let ans = DnsAnswer {
            addr: Ipv4Addr::new(9, 9, 9, 9),
            scope: AnswerScope::ResolverWide,
            ttl_secs: 60,
        };
        let scope = CacheScopeKey::Pop(PopId(0));
        assert!(c.lookup(ServiceId(0), scope, SimTime(0)).is_none());
        c.insert(ServiceId(0), scope, &ans, SimTime(0));
        assert_eq!(
            c.lookup(ServiceId(0), scope, SimTime(59)),
            Some(Ipv4Addr::new(9, 9, 9, 9))
        );
        assert!(c.lookup(ServiceId(0), scope, SimTime(60)).is_none());
        assert_eq!(c.len(), 1);
        c.evict_expired(SimTime(61));
        assert!(c.is_empty());
    }

    #[test]
    fn noise_floor_produces_rare_false_positives_only() {
        let f = fixture();
        let r = resolver(&f);
        // Infrastructure prefixes have no users; only the noise floor can
        // make them hit. Over many windows, hits must be very rare.
        let mut probes = 0u32;
        let mut hits = 0u32;
        for rec in f.topo.prefixes.iter() {
            if rec.kind != PrefixKind::Infrastructure {
                continue;
            }
            for w in 0..50 {
                let t = SimTime(w * 600);
                probes += 1;
                if matches!(r.probe(rec.net, "svc0.example", t), ProbeResult::Hit(_)) {
                    hits += 1;
                }
            }
        }
        assert!(probes > 0);
        assert!(
            (hits as f64) < probes as f64 * 0.01,
            "{hits}/{probes} false positives"
        );
    }
}
