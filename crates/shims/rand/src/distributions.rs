//! The `Standard` distribution and sampling iterators.

use crate::RngCore;
use core::marker::PhantomData;

/// A distribution that can sample values of type `T`.
pub trait Distribution<T> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Uniform over a type's full value domain (floats: `[0, 1)`).
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

macro_rules! impl_standard_via_u64 {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            #[inline]
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_via_u64!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Distribution<bool> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Distribution<f64> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

/// Iterator returned by [`crate::Rng::sample_iter`].
pub struct DistIter<D, R, T> {
    distr: D,
    rng: R,
    _marker: PhantomData<T>,
}

impl<D, R, T> DistIter<D, R, T> {
    pub(crate) fn new(distr: D, rng: R) -> Self {
        DistIter {
            distr,
            rng,
            _marker: PhantomData,
        }
    }
}

impl<D, R, T> Iterator for DistIter<D, R, T>
where
    D: Distribution<T>,
    R: RngCore,
{
    type Item = T;

    #[inline]
    fn next(&mut self) -> Option<T> {
        Some(self.distr.sample(&mut self.rng))
    }
}
