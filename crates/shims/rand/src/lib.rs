//! Offline stand-in for the subset of the `rand` crate this workspace uses.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors a minimal, deterministic implementation of the APIs it
//! actually calls: `StdRng` (xoshiro256++ seeded via SplitMix64),
//! `SeedableRng::seed_from_u64`, the `Rng` convenience methods
//! (`gen`, `gen_range`, `gen_bool`, `sample_iter`), `RngCore`, and
//! `distributions::Standard`.
//!
//! Streams are *stable within this workspace* (everything is keyed off the
//! documented SplitMix64/xoshiro recurrences below) but intentionally make
//! no attempt to match upstream `rand`'s byte streams.

pub mod distributions;
pub mod rngs;

pub use distributions::{Distribution, Standard};

/// Low-level source of randomness: the object-safe core trait.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`'s `seed_from_u64`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from a range by an RNG.
pub trait SampleUniform: PartialOrd + Copy {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
            #[inline]
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                // 53-bit mantissa uniform in [0, 1).
                let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                let v = lo as f64 + u * (hi as f64 - lo as f64);
                // Guard against rounding up to the open bound.
                if v >= hi as f64 { lo } else { v as $t }
            }
            #[inline]
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let u = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
                (lo as f64 + u * (hi as f64 - lo as f64)) as $t
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// User-facing convenience methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    #[inline]
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
        Self: Sized,
    {
        Standard.sample(self)
    }

    #[inline]
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        T: SampleUniform,
        S: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of range");
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }

    #[inline]
    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T
    where
        Self: Sized,
    {
        distr.sample(self)
    }

    #[inline]
    fn sample_iter<T, D: Distribution<T>>(self, distr: D) -> distributions::DistIter<D, Self, T>
    where
        Self: Sized,
    {
        distributions::DistIter::new(distr, self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}
