//! Deterministic RNG engines.

use crate::{RngCore, SeedableRng};

/// The workspace's standard RNG: xoshiro256++ with SplitMix64 seeding.
///
/// Chosen for speed (four u64 of state, a handful of ALU ops per draw) and
/// well-studied statistical quality. Not cryptographic, which matches how
/// the workspace uses it (synthetic-topology sampling).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // xoshiro's all-zero state is a fixed point; SplitMix64 cannot
        // produce four zeros from any seed, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        StdRng { s }
    }
}

impl RngCore for StdRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        // xoshiro256++ step.
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }
}
