//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;

/// A length range for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    /// Exclusive upper bound.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { min: n, max: n + 1 }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> SizeRange {
        SizeRange {
            min: r.start,
            max: r.end.max(r.start + 1),
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
        SizeRange {
            min: *r.start(),
            max: r.end() + 1,
        }
    }
}

/// Vectors whose elements come from `element` and whose length falls in
/// `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.min..self.size.max);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
