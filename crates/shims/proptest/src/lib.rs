//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! Real proptest shrinks failures and persists regressions; this shim keeps
//! the same *test semantics* — N deterministic pseudo-random cases per
//! property, sampled from composable strategies — without the machinery.
//! Failures report the case index and the seed is a pure function of the
//! test's module path, so a red property test reproduces identically on
//! every run and machine.

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// One generated test case body, run inside a closure returning
/// `Err(message)` on `prop_assert!` failure.
#[macro_export]
macro_rules! proptest {
    (@one ($cfg:expr) $(#[$meta:meta])* fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::rng_for(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cfg.cases {
                $( let $pat = $crate::strategy::Strategy::sample(&($strat), &mut __rng); )+
                let __result: ::core::result::Result<(), ::std::string::String> = (move || {
                    $body
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(__msg) = __result {
                    panic!(
                        "proptest '{}' failed on case {}/{}: {}",
                        stringify!($name), __case, __cfg.cases, __msg
                    );
                }
            }
        }
    };
    (@cfg ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident( $($args:tt)* ) $body:block )* ) => {
        $( $crate::proptest!(@one ($cfg) $(#[$meta])* fn $name ( $($args)* ) $body); )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err(
                format!("assertion failed: {}", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(format!($($fmt)+));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::core::result::Result::Err(format!(
                        "assertion failed: `{} == {}` (left: {:?}, right: {:?})",
                        stringify!($left), stringify!($right), __l, __r
                    ));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::core::result::Result::Err(format!(
                        "{} (left: {:?}, right: {:?})",
                        format!($($fmt)+), __l, __r
                    ));
                }
            }
        }
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if *__l == *__r {
                    return ::core::result::Result::Err(format!(
                        "assertion failed: `{} != {}` (both: {:?})",
                        stringify!($left),
                        stringify!($right),
                        __l
                    ));
                }
            }
        }
    };
}

/// Skip the rest of the case when a precondition fails (counts as a pass).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Ok(());
        }
    };
}
