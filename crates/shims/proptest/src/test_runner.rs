//! Deterministic case-count and RNG configuration.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// How many cases each property runs.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        ProptestConfig { cases }
    }
}

/// A per-test RNG whose seed is a pure function of the test's full path,
/// so failures reproduce identically across runs and machines.
pub fn rng_for(test_path: &str) -> StdRng {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in test_path.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}
