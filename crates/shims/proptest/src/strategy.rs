//! Composable value-generation strategies.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SampleUniform};

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        MapStrategy { inner: self, f }
    }

    fn prop_flat_map<S2, F>(self, f: F) -> FlatMapStrategy<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMapStrategy { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        self.0.sample(rng)
    }
}

/// Always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

pub struct MapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for MapStrategy<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

pub struct FlatMapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMapStrategy<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn sample(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

impl<T: SampleUniform> Strategy for std::ops::Range<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> Strategy for std::ops::RangeInclusive<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Homogeneous collections of strategies sample element-wise.
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
        self.iter().map(|s| s.sample(rng)).collect()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Uniform over the whole domain of `A`.
pub struct Any<A>(std::marker::PhantomData<A>);

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;
    fn sample(&self, rng: &mut StdRng) -> A {
        A::arbitrary(rng)
    }
}

/// `any::<T>()` — the full-domain strategy for `T`.
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(std::marker::PhantomData)
}

/// String strategies from a simplified regex pattern.
///
/// Supports literal characters, `[a-z0-9_]`-style classes (ranges and
/// singletons), `.` for printable ASCII, and the quantifiers `{m}`,
/// `{m,n}`, `?`, `*`, `+` (the starred forms capped at 8 repeats).
impl Strategy for &str {
    type Value = String;
    fn sample(&self, rng: &mut StdRng) -> String {
        sample_pattern(self, rng)
    }
}

fn sample_pattern(pattern: &str, rng: &mut StdRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        // Parse one atom into its candidate alphabet.
        let alphabet: Vec<char> = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| i + p)
                    .unwrap_or(chars.len() - 1);
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                        for c in lo..=hi {
                            if let Some(ch) = char::from_u32(c) {
                                set.push(ch);
                            }
                        }
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                i = close + 1;
                set
            }
            '.' => {
                i += 1;
                (0x20u8..0x7f).map(|b| b as char).collect()
            }
            '\\' if i + 1 < chars.len() => {
                i += 2;
                vec![chars[i - 1]]
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        // Parse an optional quantifier.
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| i + p)
                .unwrap_or(chars.len() - 1);
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((m, n)) => (m.trim().parse().unwrap_or(0), n.trim().parse().unwrap_or(8)),
                None => {
                    let m = body.trim().parse().unwrap_or(1);
                    (m, m)
                }
            }
        } else if i < chars.len() && matches!(chars[i], '?' | '*' | '+') {
            let q = chars[i];
            i += 1;
            match q {
                '?' => (0, 1),
                '*' => (0, 8),
                _ => (1, 8),
            }
        } else {
            (1usize, 1usize)
        };
        if alphabet.is_empty() {
            continue;
        }
        let n = rng.gen_range(min..=max.max(min));
        for _ in 0..n {
            out.push(alphabet[rng.gen_range(0..alphabet.len())]);
        }
    }
    out
}
