//! Offline facade for `serde`.
//!
//! Re-exports the no-op derive macros (macro namespace) and the
//! hand-rolled JSON traits from the `serde_json` shim (type namespace)
//! under the familiar names, so `use serde::{Serialize, Deserialize}`
//! works both in `#[derive(...)]` position and as trait bounds/impls.

pub use serde_derive::{Deserialize, Serialize};

// Same names in the trait namespace — this mirrors how real serde exports
// both a trait and a derive macro called `Serialize`.
pub use serde_json::{Deserialize, Serialize};
