//! Offline stand-in for `parking_lot`, built on `std::sync`.
//!
//! Exposes `Mutex`/`RwLock` with parking_lot's non-poisoning API (guards
//! come straight back, no `Result`). Poisoning is handled by propagating
//! the inner value anyway — a panicked holder leaves data in a state the
//! next lock holder is entitled to observe, exactly parking_lot's
//! semantics.

use std::sync;

pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}
