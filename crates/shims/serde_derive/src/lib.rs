//! No-op `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros.
//!
//! The workspace annotates most of its data types with serde derives as
//! documentation of intent, but only a handful of types are actually
//! exported as JSON — and those implement the (hand-rolled) `serde_json`
//! shim traits explicitly. These derives therefore expand to nothing; they
//! exist so the annotations (including `#[serde(...)]` helper attributes)
//! keep compiling unchanged in this offline environment.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
