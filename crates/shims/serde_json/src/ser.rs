//! JSON printers: compact and pretty (2-space indent, serde_json style).

use crate::value::{Map, Value};
use crate::{Error, Serialize};

/// Compact serialization, no whitespace.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_json_value(), None, 0);
    Ok(out)
}

/// Pretty serialization with 2-space indentation.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_json_value(), Some("  "), 0);
    Ok(out)
}

fn write_value(out: &mut String, v: &Value, indent: Option<&str>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => write_array(out, items, indent, depth),
        Value::Object(map) => write_object(out, map, indent, depth),
    }
}

fn write_array(out: &mut String, items: &[Value], indent: Option<&str>, depth: usize) {
    if items.is_empty() {
        out.push_str("[]");
        return;
    }
    out.push('[');
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        newline_indent(out, indent, depth + 1);
        write_value(out, item, indent, depth + 1);
    }
    newline_indent(out, indent, depth);
    out.push(']');
}

fn write_object(out: &mut String, map: &Map, indent: Option<&str>, depth: usize) {
    if map.is_empty() {
        out.push_str("{}");
        return;
    }
    out.push('{');
    for (i, (k, v)) in map.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        newline_indent(out, indent, depth + 1);
        write_string(out, k);
        out.push(':');
        if indent.is_some() {
            out.push(' ');
        }
        write_value(out, v, indent, depth + 1);
    }
    newline_indent(out, indent, depth);
    out.push('}');
}

fn newline_indent(out: &mut String, indent: Option<&str>, depth: usize) {
    if let Some(pad) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(pad);
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}
