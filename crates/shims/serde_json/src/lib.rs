//! Offline stand-in for the subset of `serde_json` this workspace uses.
//!
//! Provides a [`Value`] tree with *insertion-ordered* objects (so callers
//! control key order and output is deterministic), a strict-enough JSON
//! parser, pretty/compact printers, the [`json!`] macro, and the
//! [`Serialize`]/[`Deserialize`] traits the `serde` facade crate re-exports.
//!
//! Unlike real serde there is no derive-driven data model: types that need
//! JSON round-trips implement the two trait methods by hand against
//! [`Value`]. That keeps the whole stack auditable and dependency-free,
//! which matters in this offline build environment.

mod de;
mod ser;
mod value;

pub use de::from_str;
pub use ser::{to_string, to_string_pretty};
pub use value::{Map, Number, Value};

use std::fmt;

/// Error type for parse and convert failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Construct an error with a caller-supplied message. Public because
    /// hand-written `Deserialize` impls report their own field errors.
    pub fn new(msg: impl Into<String>) -> Error {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Serialize into a [`Value`] tree. Implement by hand for exported types.
pub trait Serialize {
    fn to_json_value(&self) -> Value;
}

/// Deserialize from a [`Value`] tree. Implement by hand for imported types.
pub trait Deserialize: Sized {
    fn from_json_value(v: &Value) -> Result<Self, Error>;
}

impl Serialize for Value {
    fn to_json_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

macro_rules! impl_serialize_prims {
    ($($t:ty => $variant:expr),* $(,)?) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                let conv: fn(&$t) -> Value = $variant;
                conv(self)
            }
        }
    )*};
}

impl_serialize_prims! {
    bool => |b| Value::Bool(*b),
    u8 => |n| Value::from(*n as u64),
    u16 => |n| Value::from(*n as u64),
    u32 => |n| Value::from(*n as u64),
    u64 => |n| Value::from(*n),
    usize => |n| Value::from(*n as u64),
    i32 => |n| Value::from(*n as i64),
    i64 => |n| Value::from(*n),
    f64 => |n| Value::from(*n),
    String => |s| Value::String(s.clone()),
}

impl Serialize for &str {
    fn to_json_value(&self) -> Value {
        Value::String((*self).to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(|v| v.to_json_value()).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> Value {
        match self {
            Some(v) => v.to_json_value(),
            None => Value::Null,
        }
    }
}

macro_rules! impl_deserialize_uint {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_json_value(v: &Value) -> Result<Self, Error> {
                v.as_u64()
                    .and_then(|n| <$t>::try_from(n).ok())
                    .ok_or_else(|| Error::new(concat!("expected ", stringify!($t))))
            }
        }
    )*};
}

impl_deserialize_uint!(u8, u16, u32, u64, usize);

impl Deserialize for f64 {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::new("expected number"))
    }
}

impl Deserialize for bool {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::new("expected bool"))
    }
}

impl Deserialize for String {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::new("expected string"))
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_json_value).collect(),
            _ => Err(Error::new("expected array")),
        }
    }
}

/// Build a [`Value`] with JSON-literal syntax.
///
/// Object keys keep their written order, so `json!` output is reproducible.
/// Values may be arbitrary expressions (anything with `Into<Value>`),
/// nested `{...}` objects, or `[...]` arrays, as with real serde_json.
#[macro_export]
macro_rules! json {
    ($($tt:tt)+) => {
        $crate::json_internal!($($tt)+)
    };
}

/// Token-munching implementation detail of [`json!`]; follows serde_json's
/// well-known `json_internal!` structure so arbitrary expressions can
/// appear in value position.
#[doc(hidden)]
#[macro_export]
macro_rules! json_internal {
    //////////// array munching ////////////
    (@array [$($elems:expr,)*]) => {
        vec![$($elems,)*]
    };
    (@array [$($elems:expr),*]) => {
        vec![$($elems),*]
    };
    (@array [$($elems:expr,)*] null $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(null)] $($rest)*)
    };
    (@array [$($elems:expr,)*] true $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(true)] $($rest)*)
    };
    (@array [$($elems:expr,)*] false $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(false)] $($rest)*)
    };
    (@array [$($elems:expr,)*] [$($array:tt)*] $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!([$($array)*])] $($rest)*)
    };
    (@array [$($elems:expr,)*] {$($map:tt)*} $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!({$($map)*})] $($rest)*)
    };
    (@array [$($elems:expr,)*] $next:expr, $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($next),] $($rest)*)
    };
    (@array [$($elems:expr,)*] $last:expr) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($last)])
    };
    (@array [$($elems:expr),*] , $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)*] $($rest)*)
    };

    //////////// object munching ////////////
    // Finished.
    (@object $object:ident () () ()) => {};
    // Insert the current entry, trailing comma present.
    (@object $object:ident [$($key:tt)+] ($value:expr) , $($rest:tt)*) => {
        $object.insert(($($key)+).to_string(), $value);
        $crate::json_internal!(@object $object () ($($rest)*) ($($rest)*));
    };
    // Insert the last entry, no trailing comma.
    (@object $object:ident [$($key:tt)+] ($value:expr)) => {
        $object.insert(($($key)+).to_string(), $value);
    };
    // Value for the current key is `null`/`true`/`false`/array/object/expr.
    (@object $object:ident ($($key:tt)+) (: null $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(null)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: true $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(true)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: false $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(false)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: [$($array:tt)*] $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!([$($array)*])) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: {$($map:tt)*} $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!({$($map)*})) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: $value:expr , $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)) , $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: $value:expr) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)));
    };
    // Munch one token into the current key.
    (@object $object:ident ($($key:tt)*) ($tt:tt $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object ($($key)* $tt) ($($rest)*) ($($rest)*));
    };

    //////////// entry points ////////////
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ([]) => { $crate::Value::Array(vec![]) };
    ([ $($tt:tt)+ ]) => {
        $crate::Value::Array($crate::json_internal!(@array [] $($tt)+))
    };
    ({}) => { $crate::Value::Object($crate::Map::new()) };
    ({ $($tt:tt)+ }) => {
        $crate::Value::Object({
            let mut object = $crate::Map::new();
            $crate::json_internal!(@object object () ($($tt)+) ($($tt)+));
            object
        })
    };
    ($other:expr) => { $crate::Value::from($other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_value() {
        let v = json!({
            "name": "itm",
            "count": 3,
            "ratio": 0.5,
            "flags": [true, false, null],
            "nested": {"a": 1, "b": "two"},
        });
        let text = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn object_preserves_insertion_order() {
        let v = json!({"z": 1, "a": 2, "m": 3});
        let text = to_string(&v).unwrap();
        assert_eq!(text, r#"{"z":1,"a":2,"m":3}"#);
    }

    #[test]
    fn string_escapes_round_trip() {
        let v = Value::String("line\nquote\"backslash\\tab\tunicode\u{1F30D}".into());
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1, 2,]").is_err());
        assert!(from_str::<Value>("nul").is_err());
        assert!(from_str::<Value>("{} trailing").is_err());
    }

    #[test]
    fn numbers_round_trip() {
        for text in ["0", "-7", "18446744073709551615", "0.125", "-2.5e3"] {
            let v: Value = from_str(text).unwrap();
            let back: Value = from_str(&to_string(&v).unwrap()).unwrap();
            assert_eq!(v, back, "{text}");
        }
    }
}
