//! The JSON value tree.

use std::fmt;

/// An insertion-ordered string→value map.
///
/// Key order is whatever the caller inserted, which makes serialized output
/// a pure function of program behavior — the property the workspace's
/// metrics and summary exports rely on for byte-stable artifacts.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    pub fn new() -> Map {
        Map::default()
    }

    /// Insert or replace; replacement keeps the original position.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Sort entries by key (recursively sorting nested objects too).
    pub fn sort_keys_recursive(&mut self) {
        self.entries.sort_by(|a, b| a.0.cmp(&b.0));
        for (_, v) in &mut self.entries {
            if let Value::Object(m) = v {
                m.sort_keys_recursive();
            }
        }
    }
}

impl FromIterator<(String, Value)> for Map {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Map {
        let mut m = Map::new();
        for (k, v) in iter {
            m.insert(k, v);
        }
        m
    }
}

/// A JSON number: either an exact integer or a double.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Non-negative integers (the common case for counters and sizes).
    PosInt(u64),
    /// Negative integers.
    NegInt(i64),
    /// Everything else.
    Float(f64),
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Number::PosInt(n) => write!(f, "{n}"),
            Number::NegInt(n) => write!(f, "{n}"),
            Number::Float(x) => {
                if x.is_finite() {
                    // Round-trippable shortest form; force a decimal point
                    // so integers-as-floats still parse as floats.
                    let s = format!("{x}");
                    if s.contains('.') || s.contains('e') || s.contains('E') {
                        f.write_str(&s)
                    } else {
                        write!(f, "{s}.0")
                    }
                } else {
                    // JSON has no NaN/Inf; emit null like serde_json does
                    // for lossy mode. Callers shouldn't produce these.
                    f.write_str("null")
                }
            }
        }
    }
}

/// A parsed or constructed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(Map),
}

impl Value {
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::PosInt(n)) => Some(*n),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(Number::PosInt(n)) => i64::try_from(*n).ok(),
            Value::Number(Number::NegInt(n)) => Some(*n),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(Number::PosInt(n)) => Some(*n as f64),
            Value::Number(Number::NegInt(n)) => Some(*n as f64),
            Value::Number(Number::Float(x)) => Some(*x),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::ser::to_string(self).map_err(|_| fmt::Error)?)
    }
}

macro_rules! impl_from {
    ($($t:ty => $make:expr),* $(,)?) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                let conv: fn($t) -> Value = $make;
                conv(v)
            }
        }
    )*};
}

impl_from! {
    bool => Value::Bool,
    u8 => |n| Value::Number(Number::PosInt(n as u64)),
    u16 => |n| Value::Number(Number::PosInt(n as u64)),
    u32 => |n| Value::Number(Number::PosInt(n as u64)),
    u64 => |n| Value::Number(Number::PosInt(n)),
    usize => |n| Value::Number(Number::PosInt(n as u64)),
    i8 => |n| Value::from(n as i64),
    i16 => |n| Value::from(n as i64),
    i32 => |n| Value::from(n as i64),
    i64 => |n| if n >= 0 { Value::Number(Number::PosInt(n as u64)) } else { Value::Number(Number::NegInt(n)) },
    f32 => |x| Value::Number(Number::Float(x as f64)),
    f64 => |x| Value::Number(Number::Float(x)),
    String => Value::String,
    &str => |s| Value::String(s.to_string()),
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}
