//! A strict recursive-descent JSON parser.

use crate::value::{Map, Number, Value};
use crate::{Deserialize, Error};

/// Parse a complete JSON document into `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    T::from_json_value(&v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("invalid literal (expected {lit})")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs.
                            let ch = if (0xD800..0xDC00).contains(&cp) {
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(c).ok_or_else(|| self.err("invalid codepoint"))?
                            } else {
                                char::from_u32(cp).ok_or_else(|| self.err("invalid codepoint"))?
                            };
                            out.push(ch);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(c) if c < 0x80 => {
                    // Bulk-copy a run of plain ASCII. Validating one scalar
                    // at a time by calling `from_utf8` on the whole
                    // remaining input is quadratic in document size.
                    let start = self.pos;
                    while matches!(
                        self.peek(),
                        Some(b) if (0x20..0x80).contains(&b) && b != b'"' && b != b'\\'
                    ) {
                        self.pos += 1;
                    }
                    let run = std::str::from_utf8(&self.bytes[start..self.pos])
                        .expect("ASCII run is valid UTF-8");
                    out.push_str(run);
                }
                Some(c) => {
                    // Non-ASCII lead byte: validate just this scalar's
                    // bytes, not the rest of the document.
                    let len = match c {
                        0xC2..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        0xF0..=0xF4 => 4,
                        _ => return Err(self.err("invalid UTF-8")),
                    };
                    let end = self.pos + len;
                    let seq = self
                        .bytes
                        .get(self.pos..end)
                        .ok_or_else(|| self.err("truncated UTF-8 sequence"))?;
                    let s = std::str::from_utf8(seq).map_err(|_| self.err("invalid UTF-8"))?;
                    out.push(s.chars().next().expect("non-empty validated sequence"));
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::Number(Number::PosInt(n)));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Number(Number::NegInt(n)));
            }
        }
        text.parse::<f64>()
            .map(|x| Value::Number(Number::Float(x)))
            .map_err(|_| self.err("invalid number"))
    }
}
