//! Offline stand-in for the subset of `criterion` this workspace's benches
//! use. A real (if simple) measurement harness: per benchmark it warms up,
//! calibrates an iteration count targeting a fixed per-sample wall time,
//! collects `sample_size` samples, and reports min/median/mean.
//!
//! Invocation matches cargo's contract for `harness = false` targets:
//! `cargo bench` runs measurements (optionally filtered by substring args),
//! `cargo test --benches` passes `--test`, which runs every body once as a
//! smoke test.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup cost. The shim runs one setup per
/// routine call regardless; the variants exist for API compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Target per-sample wall time (override with `ITM_BENCH_SAMPLE_MS`).
fn sample_budget() -> Duration {
    let ms = std::env::var("ITM_BENCH_SAMPLE_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(50u64);
    Duration::from_millis(ms)
}

/// Entry point state: CLI filter + test-mode flag.
pub struct Criterion {
    filter: Vec<String>,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Criterion {
        let mut filter = Vec::new();
        let mut test_mode = false;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_mode = true,
                // Flags cargo/criterion pass that we accept and ignore.
                "--bench" | "--benches" | "-q" | "--quiet" | "--verbose" | "--noplot"
                | "--exact" | "--nocapture" => {}
                a if a.starts_with('-') => {}
                a => filter.push(a.to_string()),
            }
        }
        Criterion { filter, test_mode }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 20,
        }
    }

    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let test_mode = self.test_mode;
        let matches = self.matches(id);
        run_one(id, 20, test_mode, matches, f);
        self
    }

    fn matches(&self, full_id: &str) -> bool {
        self.filter.is_empty() || self.filter.iter().any(|f| full_id.contains(f.as_str()))
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        let matches = self.criterion.matches(&full);
        run_one(
            &full,
            self.sample_size,
            self.criterion.test_mode,
            matches,
            f,
        );
        self
    }

    pub fn finish(&mut self) {}
}

fn run_one<F>(id: &str, sample_size: usize, test_mode: bool, matches: bool, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    if !matches {
        return;
    }
    if test_mode {
        let mut b = Bencher {
            mode: Mode::Smoke,
            samples: Vec::new(),
        };
        f(&mut b);
        println!("bench {id}: smoke ok");
        return;
    }
    let mut b = Bencher {
        mode: Mode::Measure { sample_size },
        samples: Vec::new(),
    };
    f(&mut b);
    let mut per_iter: Vec<f64> = b.samples;
    if per_iter.is_empty() {
        println!("{id:<46} (no samples)");
        return;
    }
    per_iter.sort_by(|a, b| a.partial_cmp(b).expect("finite sample"));
    let min = per_iter[0];
    let median = per_iter[per_iter.len() / 2];
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    println!(
        "{id:<46} time: [{} {} {}] ({} samples)",
        fmt_ns(min),
        fmt_ns(median),
        fmt_ns(mean),
        per_iter.len(),
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

enum Mode {
    Smoke,
    Measure { sample_size: usize },
}

/// Passed to each benchmark body; `iter`/`iter_batched` perform the
/// timing loop.
pub struct Bencher {
    mode: Mode,
    /// Nanoseconds per iteration, one entry per sample.
    samples: Vec<f64>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        match self.mode {
            Mode::Smoke => {
                black_box(f());
            }
            Mode::Measure { sample_size } => {
                // Warm-up + calibration: how many iterations fit the budget?
                let t0 = Instant::now();
                black_box(f());
                let once = t0.elapsed().max(Duration::from_nanos(1));
                let iters =
                    (sample_budget().as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
                for _ in 0..sample_size {
                    let t = Instant::now();
                    for _ in 0..iters {
                        black_box(f());
                    }
                    self.samples
                        .push(t.elapsed().as_nanos() as f64 / iters as f64);
                }
            }
        }
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        match self.mode {
            Mode::Smoke => {
                black_box(routine(setup()));
            }
            Mode::Measure { sample_size } => {
                let input = setup();
                let t0 = Instant::now();
                black_box(routine(input));
                let once = t0.elapsed().max(Duration::from_nanos(1));
                let iters =
                    (sample_budget().as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
                for _ in 0..sample_size {
                    let inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
                    let t = Instant::now();
                    for input in inputs {
                        black_box(routine(input));
                    }
                    self.samples
                        .push(t.elapsed().as_nanos() as f64 / iters as f64);
                }
            }
        }
    }
}

/// Define a group-runner function that applies each target to a fresh
/// [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Define `main` running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
