//! Path-prediction experiments (§3.3, E9).
//!
//! "When we tried to predict paths from RIPE Atlas probes to root DNS
//! servers, more than half could not be predicted due to missing links."
//!
//! The experiment predicts paths from vantage ASes to destination ASes on
//! three topology views — public (collector-visible), public + cloud-VM
//! measurements, and public + recommender-predicted links — and scores
//! each against the true paths. Failure modes are separated: *unreachable*
//! (missing links make the destination unroutable from the vantage) vs
//! *wrong* (a path is predicted but differs from the truth).

use itm_measure::Substrate;
use itm_routing::{GraphView, RoutingTree, VantagePoints};
use itm_types::Asn;
use serde::{Deserialize, Serialize};

/// Prediction scores on one view.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PredictionReport {
    /// (vantage, destination) pairs evaluated.
    pub pairs: usize,
    /// Pairs with no predicted route at all (missing-link failures).
    pub unreachable: usize,
    /// Pairs predicted exactly right (same AS path).
    pub exact: usize,
    /// Pairs predicted with the right next hop from the vantage.
    pub first_hop_correct: usize,
    /// Mean |predicted length − true length| over reachable pairs.
    pub mean_length_error: f64,
}

impl PredictionReport {
    /// Fraction of pairs that could not be predicted.
    pub fn unpredictable_fraction(&self) -> f64 {
        if self.pairs == 0 {
            0.0
        } else {
            self.unreachable as f64 / self.pairs as f64
        }
    }

    /// Fraction predicted exactly.
    pub fn exact_fraction(&self) -> f64 {
        if self.pairs == 0 {
            0.0
        } else {
            self.exact as f64 / self.pairs as f64
        }
    }
}

/// The full E9 experiment.
#[derive(Debug, Clone)]
pub struct PredictionExperiment {
    /// Vantage ASes (Atlas-probe hosts).
    pub vantages: Vec<Asn>,
    /// Destination ASes (root-server-operator stand-ins: content and
    /// infrastructure ASes).
    pub destinations: Vec<Asn>,
}

impl PredictionExperiment {
    /// Vantages from the typical probe deployment; destinations are the
    /// hypergiants and clouds (the networks popular services live in).
    pub fn typical(s: &Substrate, vantage: &VantagePoints) -> PredictionExperiment {
        let mut destinations = s.topo.hypergiants();
        destinations.extend(s.topo.clouds());
        PredictionExperiment {
            vantages: vantage.probes.clone(),
            destinations,
        }
    }

    /// Score predictions made on `view` against truth computed on `truth`.
    pub fn evaluate(&self, truth: &GraphView, view: &GraphView) -> PredictionReport {
        let mut pairs = 0;
        let mut unreachable = 0;
        let mut exact = 0;
        let mut first_hop = 0;
        let mut len_err_sum = 0.0;
        let mut len_err_n = 0usize;

        for &dst in &self.destinations {
            let true_tree = RoutingTree::compute(truth, dst);
            let pred_tree = RoutingTree::compute(view, dst);
            for &v in &self.vantages {
                let Some(true_path) = true_tree.path(v) else {
                    continue; // skip pairs unreachable even in truth
                };
                pairs += 1;
                match pred_tree.path(v) {
                    None => unreachable += 1,
                    Some(pred_path) => {
                        if pred_path == true_path {
                            exact += 1;
                        }
                        if pred_path.len() > 1
                            && true_path.len() > 1
                            && pred_path[1] == true_path[1]
                        {
                            first_hop += 1;
                        }
                        len_err_sum += ((pred_path.len() as f64) - (true_path.len() as f64)).abs();
                        len_err_n += 1;
                    }
                }
            }
        }

        PredictionReport {
            pairs,
            unreachable,
            exact,
            first_hop_correct: first_hop,
            mean_length_error: if len_err_n > 0 {
                len_err_sum / len_err_n as f64
            } else {
                0.0
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use itm_measure::{CloudProbeResult, SubstrateConfig};
    use itm_routing::CollectorSet;
    use itm_types::SeedDomain;

    #[test]
    fn public_view_is_much_worse_than_truth() {
        let s = Substrate::build(SubstrateConfig::small(), 157).unwrap();
        let truth = s.full_view();
        let vantage = VantagePoints::typical(&s.topo, &s.seeds);
        let exp = PredictionExperiment::typical(&s, &vantage);

        // Perfect view predicts perfectly.
        let perfect = exp.evaluate(&truth, &truth);
        assert!(perfect.pairs > 0);
        assert_eq!(perfect.unreachable, 0);
        assert_eq!(perfect.exact, perfect.pairs);
        assert_eq!(perfect.mean_length_error, 0.0);

        // Public view: a large share of paths is wrong or longer — the
        // §3.3.1 failure. (Destinations stay reachable through transit,
        // so the signature is wrong/longer paths rather than no path.)
        let collectors = CollectorSet::typical(&s.topo, &s.seeds);
        let (public, _) = collectors.public_view(&s.topo);
        let pub_report = exp.evaluate(&truth, &public);
        assert!(
            pub_report.exact_fraction() < 0.5,
            "public view too good: {:.3}",
            pub_report.exact_fraction()
        );
        assert!(pub_report.mean_length_error > perfect.mean_length_error);

        // Cloud augmentation helps for cloud destinations.
        let cloud = CloudProbeResult::run(&s, &truth, &SeedDomain::new(157));
        let augmented = public.with_extra_links(cloud.as_links(&s).iter());
        let aug_report = exp.evaluate(&truth, &augmented);
        assert!(
            aug_report.exact_fraction() >= pub_report.exact_fraction(),
            "augmentation hurt: {:.3} vs {:.3}",
            aug_report.exact_fraction(),
            pub_report.exact_fraction()
        );
    }
}
