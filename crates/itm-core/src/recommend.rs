//! The §3.3.3 peering recommender (E10).
//!
//! "With the assumption that networks with similar peering profiles are
//! likely to peer with the same networks, one could formulate the problem
//! as a recommendation system — we rate the likelihood that networks (the
//! shoppers) would want to peer with other networks (the items being
//! recommended) and infer the existence of links if the recommendation is
//! strong. Such predictions could rely on publicly available information
//! about networks, such as their peering policy, traffic profile,
//! customer cone size, user activity (§3.1), and network type."
//!
//! Candidates are co-located (shared facility or IXP, from the
//! PeeringDB-like registry) AS pairs without a link in the *visible*
//! topology. Each candidate gets a score combining:
//!
//! * **Collaborative signal**: Jaccard overlap of visible peer sets
//!   ("similar profiles peer with the same networks").
//! * **Policy**: product of openness propensities.
//! * **Type prior**: content↔access pairs are likelier (the flattening
//!   prior).
//! * **Scale**: cone size and user-activity (§3.1 output) boosts.
//! * **Co-location intensity**: number of shared facilities/IXPs.
//!
//! Evaluation holds out ground truth: candidates are ranked and scored
//! with precision@k and recall-at-k curves against the invisible links
//! that really exist.

use itm_measure::Substrate;
use itm_routing::GraphView;
use itm_topology::AsClass;
use itm_types::{Asn, ItmError, Result};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// Feature weights for the recommender (the D4 ablation toggles these).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RecommenderWeights {
    /// Weight of the peer-set Jaccard similarity term.
    pub collaborative: f64,
    /// Weight of the policy-propensity term.
    pub policy: f64,
    /// Weight of the class-pair prior.
    pub type_prior: f64,
    /// Weight of the log-cone-size term.
    pub cone: f64,
    /// Weight of the user-activity term.
    pub activity: f64,
    /// Weight of the shared-colocation-count term.
    pub colocation: f64,
}

impl Default for RecommenderWeights {
    fn default() -> Self {
        RecommenderWeights {
            collaborative: 1.0,
            policy: 1.0,
            type_prior: 1.0,
            cone: 0.5,
            activity: 0.5,
            colocation: 0.5,
        }
    }
}

/// A scored candidate link.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Recommendation {
    /// Candidate endpoints (canonical order).
    pub pair: (Asn, Asn),
    /// Recommendation strength (higher = likelier to peer).
    pub score: f64,
}

/// The recommender bound to a visible topology view.
pub struct PeeringRecommender<'a> {
    s: &'a Substrate,
    visible: &'a GraphView,
    weights: RecommenderWeights,
    /// Per-AS visible peer sets.
    peer_sets: Vec<HashSet<Asn>>,
    /// Per-AS user-activity proxy (normalized subscribers from the map's
    /// activity component; here the APNIC public estimate, which is what a
    /// real recommender would have).
    activity: Vec<f64>,
}

impl<'a> PeeringRecommender<'a> {
    /// Build the recommender from public inputs: the visible view, the
    /// colocation registry, and public activity estimates.
    pub fn new(
        s: &'a Substrate,
        visible: &'a GraphView,
        weights: RecommenderWeights,
    ) -> PeeringRecommender<'a> {
        let n = s.topo.n_ases();
        let mut peer_sets: Vec<HashSet<Asn>> = vec![HashSet::new(); n];
        for (i, set) in peer_sets.iter_mut().enumerate() {
            for &(nb, _) in visible.neighbors(Asn(i as u32)) {
                set.insert(nb);
            }
        }
        let max_apnic = s
            .topo
            .ases
            .iter()
            .filter_map(|a| s.apnic.estimate(a.asn))
            .fold(1.0f64, f64::max);
        let activity = s
            .topo
            .ases
            .iter()
            .map(|a| s.apnic.estimate(a.asn).unwrap_or(0.0) / max_apnic)
            .collect();
        PeeringRecommender {
            s,
            visible,
            weights,
            peer_sets,
            activity,
        }
    }

    /// Enumerate candidates: co-located pairs with no visible link.
    pub fn candidates(&self) -> Vec<(Asn, Asn, u32)> {
        let mut shared: HashMap<(Asn, Asn), u32> = HashMap::new();
        let bump = |members: &[Asn], shared: &mut HashMap<(Asn, Asn), u32>| {
            for (i, &x) in members.iter().enumerate() {
                for &y in members.iter().skip(i + 1) {
                    *shared.entry((x, y)).or_insert(0) += 1;
                }
            }
        };
        for f in &self.s.topo.facilities {
            bump(&f.tenants, &mut shared);
        }
        for x in &self.s.topo.ixps {
            bump(&x.members, &mut shared);
        }
        shared
            .into_iter()
            .filter(|&((a, b), _)| !self.visible.has_edge(a, b))
            .map(|((a, b), n)| (a, b, n))
            .collect()
    }

    /// Class-pair prior: how plausible peering is for this pair of roles.
    fn type_prior(a: AsClass, b: AsClass) -> f64 {
        use AsClass::*;
        match (a, b) {
            (Hypergiant, Eyeball) | (Eyeball, Hypergiant) => 1.0,
            (Cloud, Eyeball) | (Eyeball, Cloud) => 0.9,
            (Hypergiant, Transit) | (Transit, Hypergiant) => 0.6,
            (Cloud, Transit) | (Transit, Cloud) => 0.55,
            (Eyeball, Eyeball) => 0.5,
            (Eyeball, Stub) | (Stub, Eyeball) => 0.35,
            (Stub, Stub) => 0.2,
            (Hypergiant, Stub) | (Stub, Hypergiant) => 0.35,
            (Cloud, Stub) | (Stub, Cloud) => 0.3,
            (Transit, Transit) => 0.25,
            (Transit, Eyeball) | (Eyeball, Transit) => 0.3,
            (Transit, Stub) | (Stub, Transit) => 0.15,
            (Tier1, _) | (_, Tier1) => 0.05,
            _ => 0.5,
        }
    }

    /// Score one candidate pair.
    pub fn score(&self, a: Asn, b: Asn, shared_locations: u32) -> f64 {
        let w = &self.weights;
        let (ia, ib) = (a.index(), b.index());
        let inter = self.peer_sets[ia].intersection(&self.peer_sets[ib]).count() as f64;
        let union = (self.peer_sets[ia].len() + self.peer_sets[ib].len()) as f64 - inter;
        // Shrunk Jaccard: two single-homed stubs sharing their only
        // provider would otherwise score a perfect 1.0 and swamp the
        // ranking; the +5 prior demands real evidence volume before the
        // collaborative signal dominates.
        let jaccard = inter / (union + 5.0);

        let info_a = self.s.topo.as_info(a);
        let info_b = self.s.topo.as_info(b);
        let policy = (info_a.policy.base_propensity() * info_b.policy.base_propensity()).sqrt();
        let type_prior = Self::type_prior(info_a.class, info_b.class);
        let cone = ((self.s.topo.cones.cone_size(a) as f64).ln()
            + (self.s.topo.cones.cone_size(b) as f64).ln())
            / 20.0;
        let activity = (self.activity[ia] + self.activity[ib]) / 2.0;
        let colo = (shared_locations as f64).ln_1p() / 3.0;

        w.collaborative * jaccard
            + w.policy * policy
            + w.type_prior * type_prior
            + w.cone * cone.min(1.0)
            + w.activity * activity
            + w.colocation * colo.min(1.0)
    }

    /// Rank all candidates, strongest first.
    ///
    /// Errors with [`ItmError::InvalidConfig`] if any candidate's score is
    /// non-finite — a NaN from degenerate feature weights would otherwise
    /// make the ranking order meaningless.
    pub fn recommend(&self) -> Result<Vec<Recommendation>> {
        let mut recs: Vec<Recommendation> = self
            .candidates()
            .into_iter()
            .map(|(a, b, n)| Recommendation {
                pair: (a, b),
                score: self.score(a, b, n),
            })
            .collect();
        if let Some(bad) = recs.iter().find(|r| r.score.is_nan()) {
            return Err(ItmError::config(
                "recommender_weights",
                format!("non-finite score for pair {}-{}", bad.pair.0, bad.pair.1),
            ));
        }
        recs.sort_by(|x, y| y.score.total_cmp(&x.score).then(x.pair.cmp(&y.pair)));
        Ok(recs)
    }
}

/// Evaluation of a ranked recommendation list against ground truth.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RecommendationEval {
    /// Total candidates scored.
    pub candidates: usize,
    /// Ground-truth positives among candidates (invisible real links).
    pub positives: usize,
    /// Precision at several cutoffs: (k, precision@k, recall@k).
    pub at_k: Vec<(usize, f64, f64)>,
    /// Precision of a random ranking (the positives base rate).
    pub base_rate: f64,
}

impl RecommendationEval {
    /// Score a ranked list against the real link set.
    pub fn evaluate(s: &Substrate, recs: &[Recommendation]) -> RecommendationEval {
        let truth: HashSet<(Asn, Asn)> = s.topo.links.iter().map(|l| l.key()).collect();
        let positives = recs.iter().filter(|r| truth.contains(&r.pair)).count();
        let base_rate = if recs.is_empty() {
            0.0
        } else {
            positives as f64 / recs.len() as f64
        };
        let cutoffs = [10, 50, 100, 500, 1000];
        let mut at_k = Vec::new();
        for &k in &cutoffs {
            let k = k.min(recs.len());
            if k == 0 {
                continue;
            }
            let hits = recs[..k].iter().filter(|r| truth.contains(&r.pair)).count();
            let recall = if positives > 0 {
                hits as f64 / positives as f64
            } else {
                0.0
            };
            at_k.push((k, hits as f64 / k as f64, recall));
        }
        RecommendationEval {
            candidates: recs.len(),
            positives,
            at_k,
            base_rate,
        }
    }

    /// Precision at the smallest cutoff (the headline number).
    pub fn top_precision(&self) -> f64 {
        self.at_k.first().map(|&(_, p, _)| p).unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use itm_measure::SubstrateConfig;
    use itm_routing::CollectorSet;

    fn setup() -> (Substrate, GraphView) {
        let s = Substrate::build(SubstrateConfig::small(), 163).unwrap();
        let collectors = CollectorSet::typical(&s.topo, &s.seeds);
        let (public, _) = collectors.public_view(&s.topo);
        (s, public)
    }

    #[test]
    fn candidates_are_colocated_and_invisible() {
        let (s, public) = setup();
        let rec = PeeringRecommender::new(&s, &public, RecommenderWeights::default());
        let cands = rec.candidates();
        assert!(!cands.is_empty());
        for (a, b, n) in &cands {
            assert!(*n > 0);
            assert!(!public.has_edge(*a, *b));
            // Co-located somewhere.
            let co = s
                .topo
                .facilities
                .iter()
                .any(|f| f.has_tenant(*a) && f.has_tenant(*b))
                || s.topo
                    .ixps
                    .iter()
                    .any(|x| x.has_member(*a) && x.has_member(*b));
            assert!(co, "{a}–{b} not co-located");
        }
    }

    #[test]
    fn recommender_beats_random() {
        let (s, public) = setup();
        let rec = PeeringRecommender::new(&s, &public, RecommenderWeights::default());
        let recs = rec.recommend().unwrap();
        let eval = RecommendationEval::evaluate(&s, &recs);
        assert!(eval.positives > 0, "no invisible links to find");
        // Top-of-list precision must beat the base rate by a solid margin.
        assert!(
            eval.top_precision() > eval.base_rate * 1.5,
            "precision {:.3} vs base {:.3}",
            eval.top_precision(),
            eval.base_rate
        );
    }

    #[test]
    fn ranking_is_sorted_and_deterministic() {
        let (s, public) = setup();
        let rec = PeeringRecommender::new(&s, &public, RecommenderWeights::default());
        let a = rec.recommend().unwrap();
        let b = rec.recommend().unwrap();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.pair, y.pair);
        }
        for w in a.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn collaborative_feature_contributes() {
        // Ablation sanity: dropping all features except the type prior
        // should not beat the full model at the top of the ranking.
        let (s, public) = setup();
        let full = PeeringRecommender::new(&s, &public, RecommenderWeights::default());
        let lesioned = PeeringRecommender::new(
            &s,
            &public,
            RecommenderWeights {
                collaborative: 0.0,
                policy: 0.0,
                cone: 0.0,
                activity: 0.0,
                colocation: 0.0,
                type_prior: 1.0,
            },
        );
        let e_full = RecommendationEval::evaluate(&s, &full.recommend().unwrap());
        let e_lesioned = RecommendationEval::evaluate(&s, &lesioned.recommend().unwrap());
        // Compare recall at the largest shared cutoff.
        let r_full = e_full.at_k.last().unwrap().2;
        let r_les = e_lesioned.at_k.last().unwrap().2;
        assert!(
            r_full >= r_les * 0.9,
            "full model collapsed: {r_full:.3} vs {r_les:.3}"
        );
    }
}
