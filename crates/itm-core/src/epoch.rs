//! The epoch loop: deterministic substrate churn plus incremental map
//! rebuilds (the "continuously updated" map of the paper's abstract).
//!
//! An [`EpochPlan`] mutates the substrate between builds —
//! [`apply_epoch`] resolves its action indices against deterministic
//! eligibility lists and applies them in place — and reports a
//! [`DirtySet`]: the campaigns (and, for user mapping, the individual
//! services) those mutations invalidate. [`build_incremental`] then
//! recomputes exactly the dirty campaigns and retains every clean
//! component from the previous map, splicing re-measured user-mapping
//! services over the retained cell grid segment-by-segment.
//!
//! The contract, asserted by `tests/epoch_incremental.rs` and the CI
//! `epoch` job: the incremental map is **byte-identical** (snapshot bytes
//! and [`map_fingerprint`]) to a from-scratch build of the mutated
//! substrate, at any thread count. The argument: every campaign is a pure
//! function of `(substrate, seeds, config, faults)` with its own seed
//! stream; epoch mutations draw from disjoint `"epoch"` child domains; so
//! a campaign whose substrate inputs did not change reproduces its
//! previous output exactly, and retaining it is indistinguishable from
//! recomputing it. The dirty model in [`itm_types::epoch`] records which
//! substrate inputs each mutation touches.
//!
//! One intentional divergence: the incremental path does not re-emit
//! per-cell `EdgeAsserted` trace events for retained cells (the trace is
//! an observability stream, not part of the map; snapshot bytes and the
//! fingerprint do not cover it).

use crate::exec::ParallelExecutor;
use crate::map::{MapConfig, TrafficMap};
use crate::snapshot::snapshot_bytes;
use itm_measure::{ActivityEstimator, CloudProbeResult, Substrate, UserMapping};
use itm_routing::{AnycastDeployment, Catchments, CollectorSet};
use itm_tls::{detect_offnets, SniScan, TlsScan};
use itm_topology::AsClass;
use itm_traffic::DeliveryMode;
use itm_types::epoch::{Campaign, DirtySet, EpochAction, EpochBounds, EpochPlan};
use itm_types::{
    Asn, DomainTable, FaultInjector, FaultStats, Ipv4Addr, ItmError, Result, ServiceId,
};
use std::collections::{BTreeMap, BTreeSet};

// ---------------------------------------------------------------------------
// Eligibility lists: the deterministic orderings EpochAction indices
// resolve against. Each is a pure function of the substrate's static
// structure (AS classes, link table, catalogue), so the same action
// sequence resolves to the same entities in a replayed trajectory.
// ---------------------------------------------------------------------------

/// ASes eligible for resolver-adoption churn: eyeballs and stubs (the
/// networks that own user-access prefixes), ascending ASN.
pub fn resolver_sites(s: &Substrate) -> Vec<Asn> {
    s.topo
        .ases
        .iter()
        .filter(|a| matches!(a.class, AsClass::Eyeball | AsClass::Stub))
        .map(|a| a.asn)
        .collect()
}

/// Links eligible for flapping: peering links (transit stays up — a
/// flapped transit edge could partition the graph), in link-table order,
/// as canonical [`itm_topology::Link::key`] pairs.
pub fn flappable_links(s: &Substrate) -> Vec<(Asn, Asn)> {
    s.topo
        .links
        .iter()
        .filter(|l| l.is_peering())
        .map(|l| l.key())
        .collect()
}

/// Cloud ASes whose vantage VMs can churn, ascending ASN.
pub fn cloud_vm_sites(s: &Substrate) -> Vec<Asn> {
    let mut v = s.topo.clouds();
    v.sort_unstable();
    v
}

/// Services eligible for re-homing: the ECS DNS-redirection services (the
/// only ones the user-mapping campaign measures), catalogue order.
pub fn rehomeable_services(s: &Substrate) -> Vec<ServiceId> {
    s.catalog
        .services
        .iter()
        .filter(|svc| svc.ecs_support && svc.mode == DeliveryMode::DnsRedirection)
        .map(|svc| svc.id)
        .collect()
}

/// The eligibility-list sizes for this substrate.
pub fn epoch_bounds(s: &Substrate) -> EpochBounds {
    EpochBounds {
        n_resolver_sites: resolver_sites(s).len() as u32,
        n_flappable_links: flappable_links(s).len() as u32,
        n_cloud_vms: cloud_vm_sites(s).len() as u32,
        n_ecs_services: rehomeable_services(s).len() as u32,
    }
}

/// Generate and apply epoch `epoch`'s mutations in place, returning the
/// resolved action sequence and the dirty set it implies.
///
/// Deterministic in `(s.seeds, plan, epoch)` and independent of how many
/// earlier epochs were applied — action *generation* draws from an
/// epoch-indexed stream, and every mutation either toggles state or
/// re-draws it from an epoch-keyed domain. Replaying epochs `0..=k` on a
/// fresh substrate therefore reproduces the same world as having lived
/// through them, which is what lets the differential tests rebuild from
/// scratch mid-trajectory.
pub fn apply_epoch(
    s: &mut Substrate,
    plan: &EpochPlan,
    epoch: u32,
) -> (Vec<EpochAction>, DirtySet) {
    let sites = resolver_sites(s);
    let links = flappable_links(s);
    let vms = cloud_vm_sites(s);
    let services = rehomeable_services(s);
    let bounds = EpochBounds {
        n_resolver_sites: sites.len() as u32,
        n_flappable_links: links.len() as u32,
        n_cloud_vms: vms.len() as u32,
        n_ecs_services: services.len() as u32,
    };
    let actions = plan.actions(&s.seeds, epoch, &bounds);
    let dirty = DirtySet::from_actions(&actions, |i| services[i as usize]);

    let mut churned: BTreeSet<Asn> = BTreeSet::new();
    for a in &actions {
        match *a {
            EpochAction::ResolverChurn { site } => {
                churned.insert(sites[site as usize]);
            }
            EpochAction::LinkFlap { link } => {
                s.topo.toggle_link_down(links[link as usize]);
            }
            EpochAction::VmChurn { vm } => {
                let asn = vms[vm as usize];
                if !s.vm_down.remove(&asn) {
                    s.vm_down.insert(asn);
                }
            }
            EpochAction::Rehome { service, shift } => {
                s.frontends
                    .rehome_service(services[service as usize], shift);
            }
            EpochAction::DiurnalShift { millihours } => {
                s.traffic
                    .shift_diurnal_phase(f64::from(millihours) / 1000.0);
            }
        }
    }
    if !churned.is_empty() {
        // Adoption re-draws are keyed per prefix under an epoch-scoped
        // domain: independent of the churned-set iteration order, and a
        // different draw each epoch.
        let dom = s.seeds.child("epoch").child(&format!("churn-{epoch}"));
        let jitter = s.config.resolvers.adoption_jitter;
        s.resolvers.churn_adoption(&s.topo, &churned, jitter, &dom);
    }
    (actions, dirty)
}

/// Rebuild only the dirty campaigns of `prev` against the mutated
/// substrate, retaining everything else.
///
/// With the same `cfg` and executor as the original build, the result is
/// byte-identical to `TrafficMap::build_with(s, cfg, exec)` — see the
/// module docs for the argument and `tests/epoch_incremental.rs` for the
/// enforcement.
pub fn build_incremental(
    s: &Substrate,
    cfg: &MapConfig,
    exec: &ParallelExecutor,
    prev: TrafficMap,
    dirty: &DirtySet,
) -> Result<TrafficMap> {
    if dirty.is_clean() {
        return Ok(prev);
    }
    let _span = itm_obs::span("map.build_incremental");
    let injector = |campaign: &str| FaultInjector::new(cfg.faults.clone(), &s.seeds, campaign);

    let TrafficMap {
        user_prefixes: _,
        activity: prev_activity,
        onnet_servers: prev_onnet,
        offnet_servers: prev_offnet,
        sni_footprints: prev_sni,
        user_mapping: prev_mapping,
        catchments: prev_catchments,
        route_view: prev_route_view,
        visibility: prev_visibility,
        cache_result: prev_cache,
        root_result: prev_root,
        cloud_result: prev_cloud,
        fault_report: prev_report,
        claims: _,
    } = prev;

    // The resolver deployment is cheap relative to any campaign and is a
    // pure function of the substrate, so it is redeployed unconditionally
    // rather than threading an Option through the dirty branches.
    let resolver = s
        .open_resolver()
        .map_err(|e| ItmError::in_campaign("map.build_incremental", e))?;

    // ---- Component 1: users + activity ----
    let cache_result = if dirty.is_dirty(Campaign::CacheProbe) {
        cfg.cache_probe
            .run_with_faults(s, &resolver, &injector("cache_probe"), |n, job| {
                exec.map(n, job)
            })
    } else {
        prev_cache
    };
    let root_result = if dirty.is_dirty(Campaign::RootCrawl) {
        cfg.root_crawl
            .run_with_faults(s, &resolver, &injector("root_crawl"), |n, job| {
                exec.map(n, job)
            })
    } else {
        prev_root
    };
    let activity = if dirty.is_dirty(Campaign::Activity) {
        ActivityEstimator::fuse_with(s, &cache_result, &root_result, |n, job| exec.map(n, job))
    } else {
        prev_activity
    };
    let user_prefixes = cache_result.discovered.clone();

    // ---- Component 2: services ----
    // The SNI scan resolves against the TLS scan's candidate table, so
    // the pair recomputes together (no current mutation dirties either;
    // the branch exists for future mutation kinds and custom plans).
    let (onnet_servers, offnet_servers, sni_footprints, scan_stats) =
        if dirty.is_dirty(Campaign::TlsScan) || dirty.is_dirty(Campaign::SniScan) {
            let scan = TlsScan::run_with_faults(
                &s.topo,
                &s.tls,
                &cfg.scan,
                &s.seeds,
                &injector("tls-scan"),
                |n, job| exec.map(n, job),
            );
            let (onnet, offnet) = detect_offnets(&s.topo, &s.tls, &scan);
            let candidates: Vec<Ipv4Addr> = scan.observations.iter().map(|o| o.addr).collect();
            let domains = DomainTable::from_names(s.catalog.services.iter().map(|x| &x.domain));
            let sni = SniScan::run_with_faults(
                &s.tls,
                &candidates,
                &domains,
                &cfg.scan,
                &s.seeds,
                &injector("sni-scan"),
                |n, job| exec.map(n, job),
            );
            let footprints: BTreeMap<ServiceId, Vec<Ipv4Addr>> = s
                .catalog
                .services
                .iter()
                .map(|svc| (svc.id, sni.addresses_of(&domains, &svc.domain).to_vec()))
                .collect();
            (
                onnet,
                offnet,
                footprints,
                Some((scan.fault_stats, sni.fault_stats)),
            )
        } else {
            (prev_onnet, prev_offnet, prev_sni, None)
        };

    let user_mapping = if dirty.is_dirty(Campaign::UserMapping) {
        if dirty.services.is_empty() {
            // Dirty with no named services = invalidated wholesale.
            UserMapping::measure_with_faults(s, &resolver, &injector("user_mapping"), |n, job| {
                exec.map(n, job)
            })
        } else {
            // The dominant phase's payoff: re-measure only the re-homed
            // services and splice their segments over the retained grid.
            let fresh = UserMapping::measure_subset_with_faults(
                s,
                &resolver,
                &dirty.services,
                &injector("user_mapping"),
                |n, job| exec.map(n, job),
            );
            prev_mapping.splice(fresh, &dirty.services)
        }
    } else {
        prev_mapping
    };

    // Ground-truth view for catchments and cloud probing; cheap to derive
    // and only consulted by the dirty branches below.
    let full = s.full_view();
    let catchments = if dirty.is_dirty(Campaign::Anycast) {
        let anycast_services: Vec<ServiceId> = s
            .catalog
            .services
            .iter()
            .filter(|svc| svc.mode == DeliveryMode::Anycast)
            .map(|svc| svc.id)
            .collect();
        let computed = exec.map(anycast_services.len(), &|k| {
            let svc = anycast_services[k];
            let sites: Vec<(Asn, u32)> = s
                .frontends
                .endpoints(svc)
                .iter()
                .map(|e| {
                    let host = e.offnet_host.unwrap_or(e.asn);
                    (host, e.city)
                })
                .collect();
            let dep = AnycastDeployment::new(&s.topo, &sites, cfg.anycast_noise);
            (
                svc,
                Catchments::compute(&s.topo, &full, &dep, &s.seeds.child("map-anycast")),
            )
        });
        computed.into_iter().collect()
    } else {
        prev_catchments
    };

    // ---- Component 3: routes ----
    let (route_view, visibility, cloud_result) = if dirty.is_dirty(Campaign::Routes) {
        let collectors = CollectorSet::typical(&s.topo, &s.seeds);
        let (public_view, visibility) = collectors.public_view(&s.topo);
        let cloud_result = CloudProbeResult::run_with_faults(
            s,
            &full,
            &s.seeds,
            &injector("cloud_probe"),
            |n, job| exec.map(n, job),
        );
        let extra = cloud_result.as_links(s);
        let route_view = public_view.with_extra_links(extra.iter());
        (route_view, visibility, cloud_result)
    } else {
        (prev_route_view, prev_visibility, prev_cloud)
    };

    // Fault accounting: fresh stats for recomputed campaigns, the
    // previous build's entries (identical by the purity argument) for
    // retained ones. Same keys and gating as the full build.
    let mut fault_report: BTreeMap<String, FaultStats> = BTreeMap::new();
    if !cfg.faults.is_off() {
        fault_report.insert("cache_probe".into(), cache_result.fault_stats);
        fault_report.insert("root_crawl".into(), root_result.fault_stats);
        match &scan_stats {
            Some((tls, sni)) => {
                fault_report.insert("tls_scan".into(), *tls);
                fault_report.insert("sni_scan".into(), *sni);
            }
            None => {
                for key in ["tls_scan", "sni_scan"] {
                    if let Some(st) = prev_report.get(key) {
                        fault_report.insert(key.into(), *st);
                    }
                }
            }
        }
        fault_report.insert("ecs_mapping".into(), user_mapping.fault_stats);
        fault_report.insert("cloud_probe".into(), cloud_result.fault_stats);
    }

    let mut map = TrafficMap {
        user_prefixes,
        activity,
        onnet_servers,
        offnet_servers,
        sni_footprints,
        user_mapping,
        catchments,
        route_view,
        visibility,
        cache_result,
        root_result,
        cloud_result,
        fault_report,
        claims: None,
    };
    if cfg.record_claims {
        map.claims = Some(crate::audit::MapClaims::record(s, &map));
    }
    Ok(map)
}

// ---------------------------------------------------------------------------
// Fingerprinting: a deterministic digest over *every* map component, for
// cheap equality assertions between incremental and from-scratch builds.
// Snapshot bytes cover the serialized surface (cells, footprints, routes,
// claims); the digest folds in the components the snapshot omits.
// ---------------------------------------------------------------------------

/// FNV-1a folding over little-endian scalar encodings.
struct Digest(u64);

impl Digest {
    fn new() -> Digest {
        Digest(0xcbf2_9ce4_8422_2325)
    }
    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }
    fn u32(&mut self, v: u32) {
        self.bytes(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    fn opt_f64(&mut self, v: Option<f64>) {
        match v {
            Some(x) => {
                self.u32(1);
                self.f64(x);
            }
            None => self.u32(0),
        }
    }
    fn str(&mut self, s: &str) {
        self.bytes(s.as_bytes());
        self.bytes(&[0]);
    }
    fn stats(&mut self, st: &FaultStats) {
        self.u64(st.observed);
        self.u64(st.degraded);
        self.u64(st.lost);
        self.u64(st.retries);
    }
}

/// Digest every component of the map, snapshot-covered or not.
///
/// Two maps with equal fingerprints (against the same substrate) agree on
/// cells, footprints, routes, claims, activity estimates, catchments, raw
/// campaign outputs, and fault accounting — the equality the epoch
/// differential tests assert between incremental and full builds.
pub fn map_fingerprint(s: &Substrate, map: &TrafficMap) -> u64 {
    let mut h = Digest::new();
    h.bytes(&snapshot_bytes(s, map));

    h.u64(map.activity.len() as u64);
    for (asn, e) in map.activity.iter() {
        h.u32(asn.raw());
        h.opt_f64(e.cache_hit_rate);
        h.opt_f64(e.root_queries);
        h.opt_f64(e.apnic_users);
        h.f64(e.fused);
    }

    h.u64(map.catchments.len() as u64);
    for (svc, c) in &map.catchments {
        h.u32(svc.raw());
        for (asn, pop) in c.iter() {
            h.u32(asn.raw());
            h.u64(pop.index() as u64);
        }
    }

    for f in map.onnet_servers.iter().chain(&map.offnet_servers) {
        h.u32(f.hypergiant.raw());
        h.u32(f.host.raw());
        h.u32(f.addr.0);
        h.u32(f.city);
    }

    for p in &map.cache_result.discovered {
        h.u32(p.raw());
    }
    for (p, n) in &map.cache_result.hits_by_prefix {
        h.u32(p.raw());
        h.u32(*n);
    }
    h.u32(map.cache_result.probes_per_prefix);
    for (pop, n) in &map.cache_result.discovered_by_pop {
        h.u64(pop.index() as u64);
        h.u32(*n);
    }
    for d in &map.cache_result.domains {
        h.str(d);
    }
    h.stats(&map.cache_result.fault_stats);

    for (asn, q) in &map.root_result.queries_by_as {
        h.u32(asn.raw());
        h.f64(*q);
    }
    h.u64(map.root_result.unmapped_sources as u64);
    h.f64(map.root_result.usable_fraction);
    h.stats(&map.root_result.fault_stats);

    for &(a, b) in &map.cloud_result.links {
        h.u32(a.raw());
        h.u32(b.raw());
    }
    for asn in map
        .cloud_result
        .vantage
        .probes
        .iter()
        .chain(&map.cloud_result.vantage.cloud_vms)
    {
        h.u32(asn.raw());
    }
    h.stats(&map.cloud_result.fault_stats);

    for (label, total, vis) in &map.visibility.by_class {
        h.str(label);
        h.u64(*total as u64);
        h.u64(*vis as u64);
    }
    h.u64(map.visibility.total as u64);
    h.u64(map.visibility.visible as u64);

    for svc in &map.user_mapping.unmeasurable {
        h.u32(svc.raw());
    }
    for (svc, st) in &map.user_mapping.stats_by_service {
        h.u32(svc.raw());
        h.stats(st);
    }

    for (k, st) in &map.fault_report {
        h.str(k);
        h.stats(st);
    }
    h.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use itm_measure::SubstrateConfig;

    fn substrate() -> Substrate {
        Substrate::build(SubstrateConfig::small(), 139).expect("substrate")
    }

    #[test]
    fn eligibility_lists_are_nonempty_and_stable() {
        let s = substrate();
        let b = epoch_bounds(&s);
        assert!(b.n_resolver_sites > 0);
        assert!(b.n_flappable_links > 0);
        assert!(b.n_cloud_vms > 0);
        assert!(b.n_ecs_services > 0);
        assert_eq!(resolver_sites(&s), resolver_sites(&s));
        assert_eq!(flappable_links(&s), flappable_links(&s));
    }

    #[test]
    fn apply_epoch_is_deterministic_and_off_is_identity() {
        let mut a = substrate();
        let mut b = substrate();
        let (acts_a, dirty_a) = apply_epoch(&mut a, &EpochPlan::heavy(), 2);
        let (acts_b, dirty_b) = apply_epoch(&mut b, &EpochPlan::heavy(), 2);
        assert_eq!(acts_a, acts_b);
        assert_eq!(dirty_a, dirty_b);
        assert!(!acts_a.is_empty());
        assert_eq!(a.topo.links_down(), b.topo.links_down());
        assert_eq!(a.vm_down, b.vm_down);

        let mut c = substrate();
        let (acts, dirty) = apply_epoch(&mut c, &EpochPlan::off(), 0);
        assert!(acts.is_empty());
        assert!(dirty.is_clean());
        assert!(c.topo.links_down().is_empty());
    }

    #[test]
    fn incremental_build_matches_full_rebuild() {
        let cfg = MapConfig::default();
        let exec = ParallelExecutor::sequential();
        let mut s = substrate();
        let mut map = TrafficMap::build_with(&s, &cfg, &exec).expect("seed build");
        for epoch in 0..2u32 {
            let (_, dirty) = apply_epoch(&mut s, &EpochPlan::heavy(), epoch);
            map = build_incremental(&s, &cfg, &exec, map, &dirty).expect("incremental");
            let full = TrafficMap::build_with(&s, &cfg, &exec).expect("full rebuild");
            assert_eq!(
                snapshot_bytes(&s, &map),
                snapshot_bytes(&s, &full),
                "epoch {epoch}: incremental snapshot diverged"
            );
            assert_eq!(
                map_fingerprint(&s, &map),
                map_fingerprint(&s, &full),
                "epoch {epoch}: fingerprint diverged"
            );
        }
    }

    #[test]
    fn clean_dirty_set_returns_map_unchanged() {
        let cfg = MapConfig::default();
        let exec = ParallelExecutor::sequential();
        let s = substrate();
        let map = TrafficMap::build_with(&s, &cfg, &exec).expect("build");
        let before = map_fingerprint(&s, &map);
        let map = build_incremental(&s, &cfg, &exec, map, &DirtySet::clean()).expect("noop");
        assert_eq!(map_fingerprint(&s, &map), before);
    }

    #[test]
    fn fingerprint_distinguishes_mutated_worlds() {
        let cfg = MapConfig::default();
        let exec = ParallelExecutor::sequential();
        let mut s = substrate();
        let map0 = TrafficMap::build_with(&s, &cfg, &exec).expect("build");
        let fp0 = map_fingerprint(&s, &map0);
        let (_, dirty) = apply_epoch(&mut s, &EpochPlan::heavy(), 0);
        assert!(!dirty.is_clean());
        let map1 = build_incremental(&s, &cfg, &exec, map0, &dirty).expect("incremental");
        assert_ne!(
            map_fingerprint(&s, &map1),
            fp0,
            "heavy churn left the map unchanged"
        );
    }
}
