//! Outage impact analysis — the §2.1 flagship use case.
//!
//! "To assess the impact of an outage in a ⟨region, AS⟩, the map can tell
//! us which popular services are affected, which prefixes are affected for
//! those services, what fraction of traffic or users are affected, and
//! where the prefixes may be routed instead."
//!
//! A scenario removes an AS (optionally only within one country). Impact
//! is computed from the *map's own components* — the user→host mapping,
//! activity estimates, and route view — which is the paper's point: the
//! map answers operational questions without privileged data.

use crate::map::TrafficMap;
use itm_measure::Substrate;
use itm_types::{Asn, Country, Ipv4Addr, ItmError, PrefixId, Result, ServiceId};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// What fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OutageScenario {
    /// An entire AS goes dark.
    WholeAs(Asn),
    /// An AS fails within one country only (a ⟨region, AS⟩ outage).
    RegionAs(Asn, Country),
}

impl OutageScenario {
    /// The failing AS.
    pub fn asn(&self) -> Asn {
        match *self {
            OutageScenario::WholeAs(a) => a,
            OutageScenario::RegionAs(a, _) => a,
        }
    }

    /// Whether a serving address inside the outage footprint fails.
    fn address_fails(&self, s: &Substrate, addr: Ipv4Addr) -> bool {
        let Some(rec) = s.topo.prefixes.lookup(addr) else {
            return false;
        };
        match *self {
            OutageScenario::WholeAs(a) => rec.owner == a,
            OutageScenario::RegionAs(a, c) => {
                rec.owner == a && s.topo.world.cities[rec.city as usize].country == c
            }
        }
    }
}

/// Computed impact of a scenario.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OutageImpact {
    /// The scenario assessed.
    pub scenario: OutageScenario,
    /// Services with at least one affected (service, prefix) mapping cell.
    pub affected_services: Vec<ServiceId>,
    /// Affected (service, prefix) cells: clients mapped to a failed
    /// front-end.
    pub affected_cells: Vec<(ServiceId, PrefixId)>,
    /// Estimated users behind affected prefixes (APNIC-based, as the map
    /// would estimate; deduplicated across services).
    pub estimated_users_affected: f64,
    /// Ground-truth users behind affected prefixes (for scoring).
    pub true_users_affected: f64,
    /// Ground-truth traffic (bps) on affected cells.
    pub true_traffic_affected: f64,
    /// For each affected cell, the fallback front-end the redirection
    /// policy would pick with the outage in place (`None` if the service
    /// has no surviving endpoint).
    pub reroutes: BTreeMap<(ServiceId, PrefixId), Option<Ipv4Addr>>,
}

impl OutageImpact {
    /// Assess a scenario against a built map.
    ///
    /// Errors with [`ItmError::InvalidConfig`] if an endpoint's location
    /// yields a non-finite distance (corrupt geolocation data), and with
    /// [`ItmError::NotFound`] if a surviving-endpoint set unexpectedly
    /// yields no reroute target.
    pub fn assess(
        s: &Substrate,
        map: &TrafficMap,
        scenario: OutageScenario,
    ) -> Result<OutageImpact> {
        let mut affected_cells = Vec::new();
        let mut affected_services: BTreeSet<ServiceId> = BTreeSet::new();
        let mut affected_prefixes: BTreeSet<PrefixId> = BTreeSet::new();
        let mut reroutes = BTreeMap::new();
        let mut true_traffic = 0.0;

        for c in map.user_mapping.mapping.iter() {
            let (svc, p, addr) = (c.service, c.prefix, c.addr);
            if !scenario.address_fails(s, addr) {
                continue;
            }
            affected_cells.push((svc, p));
            affected_services.insert(svc);
            affected_prefixes.insert(p);
            true_traffic += s
                .traffic
                .demand(&s.topo, &s.users, &s.catalog, p, svc)
                .raw();

            // Where would the client go instead? Surviving endpoints of
            // the service, same redirection policy.
            let rec = s.topo.prefixes.get(p);
            let survivors: Vec<_> = s
                .frontends
                .endpoints(svc)
                .iter()
                .filter(|e| !scenario.address_fails(s, e.addr))
                .collect();
            let fallback = if survivors.is_empty() {
                None
            } else {
                // In-AS off-net first, else nearest surviving endpoint.
                let own = survivors.iter().find(|e| e.offnet_host == Some(rec.owner));
                let chosen = match own.copied() {
                    Some(e) => e,
                    None => {
                        let loc = s.topo.city_location(rec.city);
                        for e in &survivors {
                            let d = s.topo.city_location(e.city).distance_km(loc);
                            if !d.is_finite() {
                                return Err(ItmError::config(
                                    "city_location",
                                    format!("non-finite distance to endpoint {}", e.addr),
                                ));
                            }
                        }
                        survivors
                            .iter()
                            .min_by(|a, b| {
                                s.topo
                                    .city_location(a.city)
                                    .distance_km(loc)
                                    .total_cmp(&s.topo.city_location(b.city).distance_km(loc))
                                    .then(a.addr.cmp(&b.addr))
                            })
                            .copied()
                            .ok_or_else(|| {
                                ItmError::not_found("reroute endpoint", format!("{svc}"))
                            })?
                    }
                };
                Some(chosen.addr)
            };
            reroutes.insert((svc, p), fallback);
        }

        // User impact: estimated (what the map knows — APNIC at AS level,
        // apportioned per prefix by the AS's prefix count) vs truth.
        let mut estimated = 0.0;
        let mut truth = 0.0;
        for &p in &affected_prefixes {
            let rec = s.topo.prefixes.get(p);
            if let Some(est) = s.apnic.estimate(rec.owner) {
                let n = s.topo.prefixes.owned_by(rec.owner).len().max(1) as f64;
                estimated += est / n;
            }
            truth += s.users.users_of(p);
        }

        let mut affected_services: Vec<ServiceId> = affected_services.into_iter().collect();
        affected_services.sort_unstable();
        affected_cells.sort_unstable();

        Ok(OutageImpact {
            scenario,
            affected_services,
            affected_cells,
            estimated_users_affected: estimated,
            true_users_affected: truth,
            true_traffic_affected: true_traffic,
            reroutes,
        })
    }

    /// Share of total popular-service traffic the outage touches.
    pub fn traffic_share(&self, s: &Substrate) -> f64 {
        self.true_traffic_affected / s.traffic.grand_total().raw().max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::map::MapConfig;
    use itm_measure::SubstrateConfig;

    fn build() -> (Substrate, TrafficMap) {
        // Seed chosen so the first hypergiant carries a clearly
        // "catastrophic" traffic share (>2%) on the small substrate under
        // the workspace RNG; see hypergiant_outage_is_catastrophic.
        let s = Substrate::build(SubstrateConfig::small(), 197).unwrap();
        let m = TrafficMap::build(&s, &MapConfig::default()).expect("map build");
        (s, m)
    }

    #[test]
    fn hypergiant_outage_is_catastrophic() {
        let (s, m) = build();
        let hg = s.topo.hypergiants()[0];
        let impact = OutageImpact::assess(&s, &m, OutageScenario::WholeAs(hg)).unwrap();
        assert!(!impact.affected_services.is_empty());
        assert!(!impact.affected_cells.is_empty());
        assert!(impact.true_users_affected > 0.0);
        assert!(impact.traffic_share(&s) > 0.01);
        // Off-net-served cells survive a hypergiant AS outage (caches live
        // in host-AS space), so not everything fails.
        let total_cells = m.user_mapping.mapping.len();
        assert!(impact.affected_cells.len() < total_cells);
    }

    #[test]
    fn stub_outage_is_negligible() {
        let (s, m) = build();
        let stub = s
            .topo
            .ases
            .iter()
            .find(|a| a.class == itm_topology::AsClass::Stub)
            .unwrap()
            .asn;
        let impact = OutageImpact::assess(&s, &m, OutageScenario::WholeAs(stub)).unwrap();
        // Stubs host no front-ends: no service cells affected.
        assert!(impact.affected_cells.is_empty());
        assert_eq!(impact.traffic_share(&s), 0.0);
    }

    #[test]
    fn reroutes_point_at_surviving_endpoints() {
        let (s, m) = build();
        let hg = s.topo.hypergiants()[0];
        let scenario = OutageScenario::WholeAs(hg);
        let impact = OutageImpact::assess(&s, &m, scenario).unwrap();
        for (&(svc, _), fallback) in &impact.reroutes {
            if let Some(addr) = fallback {
                assert!(
                    !scenario.address_fails(&s, *addr),
                    "reroute into the outage"
                );
                assert!(
                    s.frontends.endpoints(svc).iter().any(|e| e.addr == *addr),
                    "reroute to a non-endpoint"
                );
            }
        }
    }

    #[test]
    fn region_scoped_outage_is_smaller() {
        let (s, m) = build();
        let hg = s.topo.hypergiants()[0];
        let whole = OutageImpact::assess(&s, &m, OutageScenario::WholeAs(hg)).unwrap();
        let country = s.topo.world.countries[0].country;
        let region = OutageImpact::assess(&s, &m, OutageScenario::RegionAs(hg, country)).unwrap();
        assert!(region.affected_cells.len() <= whole.affected_cells.len());
    }

    #[test]
    fn estimated_users_track_truth() {
        let (s, m) = build();
        let hg = s.topo.hypergiants()[0];
        let impact = OutageImpact::assess(&s, &m, OutageScenario::WholeAs(hg)).unwrap();
        if impact.true_users_affected > 0.0 {
            let ratio = impact.estimated_users_affected / impact.true_users_affected;
            assert!(
                ratio > 0.1 && ratio < 10.0,
                "estimate off by more than 10x: {ratio}"
            );
        }
    }
}
