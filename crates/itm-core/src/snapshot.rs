//! The snapshot writer: serialize an assembled [`TrafficMap`] into the
//! sectioned binary format of [`itm_types::snap`].
//!
//! Everything written is a pure function of `(substrate, map)` — cell
//! columns come from the already-sorted [`CellMap`] iteration, claim bits
//! from [`MapClaims`] (recorded at build time or rebuilt here, identical
//! either way), adjacency from the route view's sorted neighbor lists —
//! so the bytes are identical at any `--threads` and across runs with the
//! same seed. The reverse index and front-end table are derived with
//! explicit, deterministic sorts.
//!
//! [`CellMap`]: itm_types::CellMap
//! [`MapClaims`]: crate::audit::MapClaims

use crate::audit::{bits, MapClaims};
use crate::map::TrafficMap;
use itm_measure::Substrate;
use itm_topology::NeighborKind;
use itm_types::snap::{rel, section, SnapWriter};
use itm_types::{Asn, DomainTable, ItmError, Result};
use std::collections::BTreeSet;

/// Map a topology relationship onto its on-disk code.
fn rel_code(kind: NeighborKind) -> u8 {
    match kind {
        NeighborKind::Customer => rel::CUSTOMER,
        NeighborKind::Provider => rel::PROVIDER,
        NeighborKind::Peer => rel::PEER,
    }
}

/// Serialize the map into snapshot bytes (see DESIGN.md §14).
///
/// The claim column reuses the map's recorded [`MapClaims`] when
/// `record_claims` was on and rebuilds them otherwise; both paths produce
/// the same bytes because claim recording is itself a pure function of
/// `(substrate, map)`.
pub fn snapshot_bytes(s: &Substrate, map: &TrafficMap) -> Vec<u8> {
    let _span = itm_obs::span("map.snapshot");

    // ---- Domain table: catalogue order, exactly as the map build interns.
    let domains = DomainTable::from_names(s.catalog.services.iter().map(|x| &x.domain));
    let n_services = domains.len();
    let mut dom_off: Vec<u32> = Vec::with_capacity(n_services + 1);
    let mut dom_bytes: Vec<u8> = Vec::new();
    dom_off.push(0);
    for (_, name) in domains.iter() {
        dom_bytes.extend_from_slice(name.as_bytes());
        dom_bytes.push(0); // NUL terminator keeps names greppable in hexdumps
        dom_off.push(dom_bytes.len() as u32);
    }
    let mut dom_sorted: Vec<u32> = (0..n_services as u32).collect();
    dom_sorted.sort_by(|&a, &b| {
        domains
            .name(itm_types::DomainId(a))
            .cmp(domains.name(itm_types::DomainId(b)))
            .then(a.cmp(&b))
    });

    // ---- Prefix columns, in prefix-id order.
    let n_prefixes = s.topo.prefixes.len();
    let mut pfx_base: Vec<u32> = Vec::with_capacity(n_prefixes);
    let mut pfx_owner: Vec<u32> = Vec::with_capacity(n_prefixes);
    for r in s.topo.prefixes.iter() {
        pfx_base.push(r.net.network().0);
        pfx_owner.push(r.owner.raw());
    }
    let mut pfx_sorted: Vec<u32> = (0..n_prefixes as u32).collect();
    pfx_sorted.sort_by_key(|&i| (pfx_base[i as usize], i));

    // ---- Cell columns: CellMap iteration is already (service, prefix)
    // sorted, so the service-major runs fall out of a single pass.
    let cells = &map.user_mapping.mapping;
    let n_cells = cells.len();
    let mut cell_svc_off: Vec<u64> = vec![0; n_services + 1];
    let mut cell_prefix: Vec<u32> = Vec::with_capacity(n_cells);
    let mut cell_addr: Vec<u32> = Vec::with_capacity(n_cells);
    for c in cells.iter() {
        if let Some(slot) = cell_svc_off.get_mut(c.service.index() + 1) {
            *slot += 1;
        }
        cell_prefix.push(c.prefix.raw());
        cell_addr.push(c.addr.0);
    }
    for i in 1..cell_svc_off.len() {
        cell_svc_off[i] += cell_svc_off[i - 1];
    }

    // Claim bitmaps, aligned with the cell columns. The recorded table is
    // in the same iteration order, so it maps through directly.
    let rebuilt;
    let claims = match &map.claims {
        Some(c) => c,
        None => {
            rebuilt = MapClaims::record(s, map);
            &rebuilt
        }
    };
    let mut cell_bits = claims.cell_bits.clone();
    cell_bits.resize(n_cells, bits::ECS | bits::CATALOG_PRIOR);

    // Reverse index: cell indices ordered by (serving address, index).
    let mut cell_rev: Vec<u32> = (0..n_cells as u32).collect();
    cell_rev.sort_by_key(|&i| (cell_addr[i as usize], i));

    // ---- Front-end table: every distinct serving address the map knows.
    let mut fronts: BTreeSet<u32> = cell_addr.iter().copied().collect();
    for addrs in map
        .user_mapping
        .footprint
        .values()
        .chain(map.sni_footprints.values())
    {
        fronts.extend(addrs.iter().map(|a| a.0));
    }
    let front_addr: Vec<u32> = fronts.into_iter().collect();
    let front_owner: Vec<u32> = front_addr
        .iter()
        .map(|&a| {
            s.topo
                .prefixes
                .lookup(itm_types::Ipv4Addr(a))
                .map(|r| r.owner.raw())
                .unwrap_or(u32::MAX)
        })
        .collect();

    // ---- Route adjacency: the view's neighbor lists are sorted by ASN.
    let n_ases = map.route_view.n_ases();
    let mut route_off: Vec<u64> = Vec::with_capacity(n_ases + 1);
    let mut route_nbr: Vec<u32> = Vec::new();
    let mut route_kind: Vec<u8> = Vec::new();
    route_off.push(0);
    for a in 0..n_ases as u32 {
        for &(nbr, kind) in map.route_view.neighbors(Asn(a)) {
            route_nbr.push(nbr.raw());
            route_kind.push(rel_code(kind));
        }
        route_off.push(route_nbr.len() as u64);
    }

    // ---- Assemble, sections in id order.
    let meta = [
        s.seed,
        n_ases as u64,
        n_prefixes as u64,
        n_services as u64,
        n_cells as u64,
        route_nbr.len() as u64,
        front_addr.len() as u64,
    ];
    let mut w = SnapWriter::new();
    w.section_u64(section::META, &meta);
    w.section_u32(section::DOM_OFF, &dom_off);
    w.section_u8(section::DOM_BYTES, &dom_bytes);
    w.section_u32(section::DOM_SORTED, &dom_sorted);
    w.section_u32(section::PFX_BASE, &pfx_base);
    w.section_u32(section::PFX_OWNER, &pfx_owner);
    w.section_u32(section::PFX_SORTED, &pfx_sorted);
    w.section_u64(section::CELL_SVC_OFF, &cell_svc_off);
    w.section_u32(section::CELL_PREFIX, &cell_prefix);
    w.section_u32(section::CELL_ADDR, &cell_addr);
    w.section_u8(section::CELL_BITS, &cell_bits);
    w.section_u32(section::CELL_REV, &cell_rev);
    w.section_u32(section::FRONT_ADDR, &front_addr);
    w.section_u32(section::FRONT_OWNER, &front_owner);
    w.section_u64(section::ROUTE_OFF, &route_off);
    w.section_u32(section::ROUTE_NBR, &route_nbr);
    w.section_u8(section::ROUTE_KIND, &route_kind);
    w.finish()
}

/// Serialize the map and write it to `path`, returning the byte length.
pub fn write_snapshot(s: &Substrate, map: &TrafficMap, path: &str) -> Result<u64> {
    let bytes = snapshot_bytes(s, map);
    std::fs::write(path, &bytes)
        .map_err(|e| ItmError::config("snapshot_path", format!("cannot write {path}: {e}")))?;
    Ok(bytes.len() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::map::MapConfig;
    use itm_measure::SubstrateConfig;
    use itm_types::snap;

    #[test]
    fn snapshot_parses_and_counts_match_the_map() {
        let s = Substrate::build(SubstrateConfig::small(), 139).unwrap();
        let m = TrafficMap::build(&s, &MapConfig::default()).unwrap();
        let bytes = snapshot_bytes(&s, &m);
        let dir = snap::parse_dir(&bytes).unwrap();
        assert_eq!(dir.len(), 17);
        let meta = dir.iter().find(|e| e.id == snap::section::META).unwrap();
        let at = |k: usize| snap::read_u64(&bytes, meta.offset as usize + k * 8).unwrap();
        assert_eq!(at(0), s.seed);
        assert_eq!(at(1), m.route_view.n_ases() as u64);
        assert_eq!(at(2), s.topo.prefixes.len() as u64);
        assert_eq!(at(3), s.catalog.len() as u64);
        assert_eq!(at(4), m.user_mapping.mapping.len() as u64);
        assert_eq!(at(5), m.route_view.n_edges_directed() as u64);
    }

    #[test]
    fn recorded_and_rebuilt_claims_write_identical_bytes() {
        let s = Substrate::build(SubstrateConfig::small(), 139).unwrap();
        let plain = TrafficMap::build(&s, &MapConfig::default()).unwrap();
        let cfg = MapConfig {
            record_claims: true,
            ..MapConfig::default()
        };
        let recorded = TrafficMap::build(&s, &cfg).unwrap();
        assert_eq!(snapshot_bytes(&s, &plain), snapshot_bytes(&s, &recorded));
    }

    #[test]
    fn wire_claim_bits_match_audit_bits() {
        // The on-disk constants are frozen copies of the audit's; if the
        // audit encoding ever moves, the snapshot writer must translate.
        assert_eq!(snap::claim::CACHE_PROBE, bits::CACHE_PROBE);
        assert_eq!(snap::claim::ROOT_CRAWL, bits::ROOT_CRAWL);
        assert_eq!(snap::claim::ECS, bits::ECS);
        assert_eq!(snap::claim::ANYCAST, bits::ANYCAST);
        assert_eq!(snap::claim::TLS_NEAREST, bits::TLS_NEAREST);
        assert_eq!(snap::claim::CATALOG_PRIOR, bits::CATALOG_PRIOR);
    }
}
