//! The Internet Traffic Map: assembly and queries.
//!
//! [`TrafficMap::build`] runs the full §3 pipeline over a substrate:
//!
//! 1. **Users & activity** (§3.1): cache probing + root-log crawling,
//!    fused with the APNIC estimates.
//! 2. **Services & mapping** (§3.2): TLS scans for infrastructure, SNI
//!    scans for footprints, ECS mapping for user→host, anycast catchments
//!    for anycast services.
//! 3. **Routes** (§3.3): the public collector view augmented with
//!    cloud-VM-discovered links; paths predicted on demand.
//!
//! The result is self-contained and serializable (minus the prediction
//! view, which is recomputed from stored links).

use crate::exec::ParallelExecutor;
use itm_measure::{
    ActivityEstimator, CacheProbeCampaign, CacheProbeResult, CloudProbeResult, RootCrawlResult,
    RootCrawler, Substrate, UserMapping,
};
use itm_routing::{
    AnycastDeployment, Catchments, CollectorSet, GraphView, RoutingTree, VisibilityReport,
};
use itm_tls::{detect_offnets, OffnetFinding, ScanConfig, SniScan, TlsScan};
use itm_traffic::DeliveryMode;
use itm_types::{
    Asn, DomainTable, FaultInjector, FaultPlan, FaultStats, Ipv4Addr, ItmError, PrefixId, Result,
    ServiceId,
};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Map-construction configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MapConfig {
    /// Cache-probing campaign parameters.
    pub cache_probe: CacheProbeCampaign,
    /// Root-crawl parameters.
    pub root_crawl: RootCrawler,
    /// TLS/SNI scan parameters.
    pub scan: ScanConfig,
    /// Anycast intra-AS site-selection noise (hot-potato artifacts).
    pub anycast_noise: f64,
    /// Fault plan the campaigns run under (off by default: the clean,
    /// byte-identical-to-seed pipeline).
    pub faults: FaultPlan,
    /// Record per-cell claim bitmaps and per-technique claim tables
    /// ([`crate::audit::MapClaims`]) at assembly time, for the quality
    /// audit and `--explain` verdicts. Off by default: a clean build's
    /// memory profile and summary are unchanged.
    #[serde(default)]
    pub record_claims: bool,
}

impl Default for MapConfig {
    fn default() -> Self {
        MapConfig {
            cache_probe: CacheProbeCampaign::default(),
            root_crawl: RootCrawler::default(),
            scan: ScanConfig::default(),
            anycast_noise: 0.15,
            faults: FaultPlan::off(),
            record_claims: false,
        }
    }
}

/// The assembled Internet Traffic Map.
pub struct TrafficMap {
    /// Component 1: prefixes identified as hosting users.
    pub user_prefixes: BTreeSet<PrefixId>,
    /// Component 1: relative activity per AS (fused estimate).
    pub activity: ActivityEstimator,
    /// Component 2: serving infrastructure per hypergiant (on-net).
    pub onnet_servers: Vec<OffnetFinding>,
    /// Component 2: off-net deployments detected.
    pub offnet_servers: Vec<OffnetFinding>,
    /// Component 2: per-service footprints from SNI scanning.
    pub sni_footprints: BTreeMap<ServiceId, Vec<Ipv4Addr>>,
    /// Component 2: measured user→host mapping (ECS services).
    pub user_mapping: UserMapping,
    /// Component 2: anycast catchments per anycast service.
    pub catchments: BTreeMap<ServiceId, Catchments>,
    /// Component 3: the topology view available for path prediction
    /// (public + cloud-augmented links).
    pub route_view: GraphView,
    /// Collector visibility statistics (E12 input).
    pub visibility: VisibilityReport,
    /// Raw campaign outputs kept for scoring.
    pub cache_result: CacheProbeResult,
    /// Root-crawl output kept for scoring.
    pub root_result: RootCrawlResult,
    /// Cloud-probing output kept for scoring.
    pub cloud_result: CloudProbeResult,
    /// Per-technique fault accounting (`observed + degraded + lost` per
    /// technique equals the probes issued). Empty when the map was built
    /// with faults off, so clean builds stay byte-identical.
    pub fault_report: BTreeMap<String, FaultStats>,
    /// Per-cell claim bitmaps and per-technique claim tables, recorded
    /// when [`MapConfig::record_claims`] is set (`None` otherwise — the
    /// audit rebuilds them on demand).
    pub claims: Option<crate::audit::MapClaims>,
}

impl TrafficMap {
    /// Run the full pipeline.
    ///
    /// Fails only when a measurement substrate component cannot be
    /// deployed (e.g. a degenerate topology with no cities).
    pub fn build(s: &Substrate, cfg: &MapConfig) -> Result<TrafficMap> {
        Self::build_with(s, cfg, &ParallelExecutor::sequential())
    }

    /// Run the full pipeline with a shard executor.
    ///
    /// Campaigns split into a fixed number of shards (a function of input
    /// size only) and `exec` decides how many threads run them; partial
    /// results merge in shard-index order, so the map — and its JSON
    /// summary — is byte-identical for any thread count.
    pub fn build_with(
        s: &Substrate,
        cfg: &MapConfig,
        exec: &ParallelExecutor,
    ) -> Result<TrafficMap> {
        let _span = itm_obs::span("map.build");
        let _campaign = itm_obs::trace::campaign(
            itm_obs::trace::Technique::MapAssembly,
            "traffic map assembly",
        );

        let injector = |campaign: &str| FaultInjector::new(cfg.faults.clone(), &s.seeds, campaign);

        // ---- Component 1: users + activity ----
        let users_span = itm_obs::span("users.activity");
        let resolver = s
            .open_resolver()
            .map_err(|e| ItmError::in_campaign("map.build", e))?;
        let cache_result =
            cfg.cache_probe
                .run_with_faults(s, &resolver, &injector("cache_probe"), |n, job| {
                    exec.map(n, job)
                });
        let root_result =
            cfg.root_crawl
                .run_with_faults(s, &resolver, &injector("root_crawl"), |n, job| {
                    exec.map(n, job)
                });
        let activity =
            ActivityEstimator::fuse_with(s, &cache_result, &root_result, |n, job| exec.map(n, job));
        let user_prefixes = cache_result.discovered.clone();
        drop(users_span);

        // ---- Component 2: services ----
        let services_span = itm_obs::span("services.scan");
        let scan = TlsScan::run_with_faults(
            &s.topo,
            &s.tls,
            &cfg.scan,
            &s.seeds,
            &injector("tls-scan"),
            |n, job| exec.map(n, job),
        );
        let (onnet_servers, offnet_servers) = detect_offnets(&s.topo, &s.tls, &scan);
        let candidates: Vec<Ipv4Addr> = scan.observations.iter().map(|o| o.addr).collect();
        // Intern the catalogue's domains once; the SNI campaign and its
        // shards carry 4-byte ids instead of cloned strings.
        let domains = DomainTable::from_names(s.catalog.services.iter().map(|x| &x.domain));
        let sni = SniScan::run_with_faults(
            &s.tls,
            &candidates,
            &domains,
            &cfg.scan,
            &s.seeds,
            &injector("sni-scan"),
            |n, job| exec.map(n, job),
        );
        let sni_footprints: BTreeMap<ServiceId, Vec<Ipv4Addr>> = s
            .catalog
            .services
            .iter()
            .map(|svc| (svc.id, sni.addresses_of(&domains, &svc.domain).to_vec()))
            .collect();
        let user_mapping =
            UserMapping::measure_with_faults(s, &resolver, &injector("user_mapping"), |n, job| {
                exec.map(n, job)
            });
        drop(services_span);

        // Anycast catchments for anycast services: one shard per anycast
        // service, merged into a BTreeMap (disjoint service keys).
        let anycast_span = itm_obs::span("services.anycast");
        let full = s.full_view();
        let anycast_services: Vec<ServiceId> = s
            .catalog
            .services
            .iter()
            .filter(|svc| svc.mode == DeliveryMode::Anycast)
            .map(|svc| svc.id)
            .collect();
        let computed = exec.map(anycast_services.len(), &|k| {
            let svc = anycast_services[k];
            let sites: Vec<(Asn, u32)> = s
                .frontends
                .endpoints(svc)
                .iter()
                .map(|e| {
                    let host = e.offnet_host.unwrap_or(e.asn);
                    (host, e.city)
                })
                .collect();
            let dep = AnycastDeployment::new(&s.topo, &sites, cfg.anycast_noise);
            (
                svc,
                Catchments::compute(&s.topo, &full, &dep, &s.seeds.child("map-anycast")),
            )
        });
        let catchments: BTreeMap<ServiceId, Catchments> = computed.into_iter().collect();
        drop(anycast_span);

        // ---- Component 3: routes ----
        let routes_span = itm_obs::span("routes.assemble");
        let collectors = CollectorSet::typical(&s.topo, &s.seeds);
        let (public_view, visibility) = collectors.public_view(&s.topo);
        let cloud_result = CloudProbeResult::run_with_faults(
            s,
            &full,
            &s.seeds,
            &injector("cloud_probe"),
            |n, job| exec.map(n, job),
        );
        let extra = cloud_result.as_links(s);
        let route_view = public_view.with_extra_links(extra.iter());
        drop(routes_span);

        // Assert the map's edges into the trace: one event per measured
        // (service, prefix) cell, each linking the serving address and AS
        // so provenance queries can join it back to the observations that
        // produced it. CellMap iteration is sorted by (service, prefix),
        // so the event stream is byte-stable without an explicit sort.
        if itm_obs::trace::enabled() {
            let cells: Vec<(ServiceId, PrefixId, Ipv4Addr)> = user_mapping
                .mapping
                .iter()
                .map(|c| (c.service, c.prefix, c.addr))
                .collect();
            for (svc, p, addr) in cells {
                let serving_as = s.topo.prefixes.lookup(addr).map(|r| r.owner);
                let mut subjects = itm_obs::trace::Subjects::none()
                    .prefix(p.raw())
                    .service(svc.raw())
                    .addr(addr.0);
                if let Some(owner) = serving_as {
                    subjects = subjects.asn(owner.raw());
                }
                itm_obs::trace::emit(
                    itm_obs::trace::Technique::MapAssembly,
                    itm_obs::trace::EventKind::EdgeAsserted,
                    subjects,
                    &s.catalog.get(svc).domain,
                );
            }
        }

        // Per-technique fault accounting. Populated only when the plan is
        // on: a clean build carries no report, which keeps its JSON
        // summary byte-identical to builds that predate fault injection.
        let mut fault_report: BTreeMap<String, FaultStats> = BTreeMap::new();
        if !cfg.faults.is_off() {
            fault_report.insert("cache_probe".into(), cache_result.fault_stats);
            fault_report.insert("root_crawl".into(), root_result.fault_stats);
            fault_report.insert("tls_scan".into(), scan.fault_stats);
            fault_report.insert("sni_scan".into(), sni.fault_stats);
            fault_report.insert("ecs_mapping".into(), user_mapping.fault_stats);
            fault_report.insert("cloud_probe".into(), cloud_result.fault_stats);
        }

        let mut map = TrafficMap {
            user_prefixes,
            activity,
            onnet_servers,
            offnet_servers,
            sni_footprints,
            user_mapping,
            catchments,
            route_view,
            visibility,
            cache_result,
            root_result,
            cloud_result,
            fault_report,
            claims: None,
        };
        // Claim recording reads the assembled map, so it runs last; gated
        // because the tables cost memory a clean build must not pay.
        if cfg.record_claims {
            map.claims = Some(crate::audit::MapClaims::record(s, &map));
        }
        Ok(map)
    }

    /// Predict the AS path from a client AS toward the AS serving
    /// `service` for `client_prefix` (using the map's own mapping and
    /// route view — no ground truth).
    pub fn predicted_path(
        &self,
        s: &Substrate,
        client_prefix: PrefixId,
        service: ServiceId,
    ) -> Option<Vec<Asn>> {
        let serving_as = self.serving_as_for(s, client_prefix, service)?;
        let client_as = s.topo.prefixes.get(client_prefix).owner;
        let tree = RoutingTree::compute(&self.route_view, serving_as);
        tree.path(client_as)
    }

    /// The AS the map believes serves `(client_prefix, service)`.
    pub fn serving_as_for(
        &self,
        s: &Substrate,
        client_prefix: PrefixId,
        service: ServiceId,
    ) -> Option<Asn> {
        // ECS-measured mapping first.
        if let Some(addr) = self.user_mapping.mapping.get(service, client_prefix) {
            return s.topo.prefixes.lookup(addr).map(|r| r.owner);
        }
        // Anycast: the catchment's site AS.
        if let Some(c) = self.catchments.get(&service) {
            let client_as = s.topo.prefixes.get(client_prefix).owner;
            if let Some(site) = c.site_of(client_as) {
                let e = s.frontends.endpoints(service).get(site.index())?;
                return Some(e.offnet_host.unwrap_or(e.asn));
            }
        }
        // Fallback: the service owner's AS.
        Some(s.catalog.get(service).owner.serving_as())
    }

    /// Total number of distinct serving addresses the map knows about.
    pub fn known_server_count(&self) -> usize {
        let mut addrs: BTreeSet<u32> = BTreeSet::new();
        for f in self.onnet_servers.iter().chain(&self.offnet_servers) {
            addrs.insert(f.addr.0);
        }
        for v in self.sni_footprints.values() {
            addrs.extend(v.iter().map(|a| a.0));
        }
        addrs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use itm_measure::SubstrateConfig;

    fn build() -> (Substrate, TrafficMap) {
        let s = Substrate::build(SubstrateConfig::small(), 139).unwrap();
        let m = TrafficMap::build(&s, &MapConfig::default()).expect("map build");
        (s, m)
    }

    #[test]
    fn map_has_all_components() {
        let (s, m) = build();
        assert!(!m.user_prefixes.is_empty());
        assert!(!m.activity.is_empty());
        assert!(!m.onnet_servers.is_empty());
        assert!(m.known_server_count() > 0);
        assert!(!m.user_mapping.mapping.is_empty());
        // Every anycast service has catchments.
        let anycast = s
            .catalog
            .services
            .iter()
            .filter(|x| x.mode == DeliveryMode::Anycast)
            .count();
        assert_eq!(m.catchments.len(), anycast);
    }

    #[test]
    fn predicted_paths_exist_for_measured_cells() {
        let (s, m) = build();
        let mut tested = 0;
        for c in m.user_mapping.mapping.iter().take(20) {
            if let Some(path) = m.predicted_path(&s, c.prefix, c.service) {
                assert_eq!(
                    path.first().copied(),
                    Some(s.topo.prefixes.get(c.prefix).owner)
                );
                tested += 1;
            }
        }
        assert!(tested > 0, "no predictable paths at all");
    }

    #[test]
    fn route_view_is_public_plus_cloud() {
        let (s, m) = build();
        // The augmented view has at least as many edges as any cloud
        // discovered link set alone and is a subset of ground truth.
        assert!(m.route_view.n_edges_directed() <= s.full_view().n_edges_directed());
        for &(a, b) in &m.cloud_result.links {
            assert!(m.route_view.has_edge(a, b));
        }
    }
}
