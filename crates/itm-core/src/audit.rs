//! Truth-conditioned map-quality auditing (the "five blind men" scorer).
//!
//! The map fuses several partial measurement views: ECS mapping, anycast
//! catchments, TLS/SNI footprints, the catalogue prior, cache probing,
//! root crawling, and cloud traceroutes. Each sees a slice of the truth;
//! where slices overlap they can disagree. Because the substrate is
//! synthetic, every technique's view is exactly scorable — this module
//! owns the sweep: it enumerates the cell universe, derives each
//! technique's claim from compact per-technique claim tables
//! ([`MapClaims`]), compares the claims against ground truth, and rolls
//! the verdicts into an [`itm_obs::QualityReport`].
//!
//! Three claim planes:
//!
//! * **replica** — a claim names the AS serving a `(service, prefix)`
//!   cell. Estimators: `ecs` (the measured mapping), `anycast` (BGP
//!   catchments), `tls_nearest` (geodesically nearest SNI-confirmed
//!   front-end — the classic scan-derived assignment heuristic),
//!   `catalog_prior` (the operator's home AS), and `fused` (the map's own
//!   [`TrafficMap::serving_as_for`] cascade).
//! * **presence** — a claim asserts "users live here": `cache_probe` at
//!   prefix granularity, `root_crawl` at AS granularity.
//! * **routes** — a claim asserts an inter-AS link exists: `cloud_probe`
//!   against the ground-truth link set.
//!
//! Ground truth for a replica cell is the substrate's redirection policy
//! ([`itm_dns::FrontendDirectory::select`]): the off-net inside the
//! client's AS when one exists, else the geodesically nearest on-net PoP.
//! Anycast services are scored against the same intent — the catchment
//! estimator's gap to it (BGP path choice plus hot-potato noise) is
//! exactly the §3.2.3 open problem the audit is meant to expose.
//!
//! Everything here is a pure function of `(substrate, map)`. The map is
//! byte-identical across thread counts, so the audit — and its JSON — is
//! too.

use crate::map::TrafficMap;
use itm_measure::Substrate;
use itm_obs::quality::{DisagreementIndex, PairwiseAgreement, QualityReport, TechniqueAudit};
use itm_obs::Verdict;
use itm_topology::PrefixKind;
use itm_traffic::{DeliveryMode, Service};
use itm_types::{Asn, GeoPoint, Ipv4Addr, PrefixId, ServiceId};
use std::collections::BTreeMap;

/// Claim-bitmap bits: which techniques back one measured mapping cell.
pub mod bits {
    /// Cache probing found users in the cell's prefix.
    pub const CACHE_PROBE: u8 = 1 << 0;
    /// The root crawl saw queries from the cell's AS.
    pub const ROOT_CRAWL: u8 = 1 << 1;
    /// The ECS campaign measured the cell directly.
    pub const ECS: u8 = 1 << 2;
    /// A catchment assigns the cell's AS to a serving site.
    pub const ANYCAST: u8 = 1 << 3;
    /// An SNI-confirmed front-end exists for the cell's service.
    pub const TLS_NEAREST: u8 = 1 << 4;
    /// The catalogue prior always speaks.
    pub const CATALOG_PRIOR: u8 = 1 << 5;
}

/// Compact per-technique claim tables, plus the per-cell claim bitmap.
///
/// Recorded at assembly time when [`crate::MapConfig::record_claims`] is
/// set (or rebuilt on demand by [`audit`]): dense vectors keyed by the
/// same raw indices the rest of the pipeline uses, so deriving any cell's
/// claim set is O(log services) — cheap enough to sweep hundreds of
/// millions of cells.
#[derive(Debug, Clone, Default)]
pub struct MapClaims {
    /// One bitmap byte per measured mapping cell, in
    /// `user_mapping.mapping` iteration order (sorted by `(service,
    /// prefix)`). See [`bits`].
    pub cell_bits: Vec<u8>,
    /// Per anycast service: catchment-derived serving AS per client AS
    /// (dense ASN index; `None` = unreachable).
    anycast_site_as: BTreeMap<ServiceId, Vec<Option<Asn>>>,
    /// Per SNI-footprinted service: owner AS of the geodesically nearest
    /// confirmed front-end, per city (ties toward the smaller address).
    tls_nearest_as: BTreeMap<ServiceId, Vec<Option<Asn>>>,
    /// The catalogue prior per service index.
    catalog_prior_as: Vec<Asn>,
    /// Serving address → host AS, memoized over every address the map's
    /// footprints mention.
    addr_owner: BTreeMap<u32, Asn>,
    /// Cache-probe presence claim per prefix index.
    cache_prefix: Vec<bool>,
    /// Root-crawl presence claim per AS index.
    root_as: Vec<bool>,
}

impl MapClaims {
    /// Build the claim tables from an assembled map.
    pub fn record(s: &Substrate, map: &TrafficMap) -> MapClaims {
        let _span = itm_obs::span("map.claims");
        let n_prefixes = s.topo.prefixes.len();
        let n_ases = s.topo.n_ases();
        let n_cities = s.topo.world.cities.len();

        let cache_prefix = map.cache_result.presence_claims(n_prefixes);
        let mut root_as = vec![false; n_ases];
        for a in map.root_result.claimed_as_set(s) {
            if let Some(slot) = root_as.get_mut(a.index()) {
                *slot = true;
            }
        }

        let mut anycast_site_as = BTreeMap::new();
        for (&svc, c) in &map.catchments {
            let eps = s.frontends.endpoints(svc);
            let mut per_as = vec![None; n_ases];
            for (client, site) in c.iter() {
                if let Some(e) = eps.get(site.index()) {
                    per_as[client.index()] = Some(e.offnet_host.unwrap_or(e.asn));
                }
            }
            anycast_site_as.insert(svc, per_as);
        }

        let mut tls_nearest_as = BTreeMap::new();
        for (&svc, addrs) in &map.sni_footprints {
            // (location, address, host AS) per confirmed front-end.
            let resolved: Vec<(GeoPoint, Ipv4Addr, Asn)> = addrs
                .iter()
                .filter_map(|&a| {
                    s.topo
                        .prefixes
                        .lookup(a)
                        .map(|r| (s.topo.city_location(r.city), a, r.owner))
                })
                .collect();
            if resolved.is_empty() {
                continue;
            }
            let mut per_city = Vec::with_capacity(n_cities);
            for city in 0..n_cities as u32 {
                let loc = s.topo.city_location(city);
                let best = resolved.iter().min_by(|a, b| {
                    a.0.distance_km(loc)
                        .total_cmp(&b.0.distance_km(loc))
                        .then(a.1.cmp(&b.1))
                });
                per_city.push(best.map(|&(_, _, host)| host));
            }
            tls_nearest_as.insert(svc, per_city);
        }

        let catalog_prior_as: Vec<Asn> = s
            .catalog
            .services
            .iter()
            .map(|svc| svc.owner.serving_as())
            .collect();

        let mut addr_owner: BTreeMap<u32, Asn> = BTreeMap::new();
        for addrs in map
            .user_mapping
            .footprint
            .values()
            .chain(map.sni_footprints.values())
        {
            for &a in addrs {
                if let Some(r) = s.topo.prefixes.lookup(a) {
                    addr_owner.insert(a.0, r.owner);
                }
            }
        }

        let mut claims = MapClaims {
            cell_bits: Vec::with_capacity(map.user_mapping.mapping.len()),
            anycast_site_as,
            tls_nearest_as,
            catalog_prior_as,
            addr_owner,
            cache_prefix,
            root_as,
        };
        for c in map.user_mapping.mapping.iter() {
            let (svc, p) = (c.service, c.prefix);
            let rec = s.topo.prefixes.get(p);
            let mut b = bits::ECS | bits::CATALOG_PRIOR;
            if claims.cache_claim(p) {
                b |= bits::CACHE_PROBE;
            }
            if claims.root_claim(rec.owner) {
                b |= bits::ROOT_CRAWL;
            }
            if claims.anycast_claim(svc, rec.owner).is_some() {
                b |= bits::ANYCAST;
            }
            if claims.tls_claim(svc, rec.city).is_some() {
                b |= bits::TLS_NEAREST;
            }
            claims.cell_bits.push(b);
        }
        claims
    }

    /// The catchment estimator's serving-AS claim for a cell.
    pub fn anycast_claim(&self, svc: ServiceId, client: Asn) -> Option<Asn> {
        self.anycast_site_as
            .get(&svc)
            .and_then(|v| v.get(client.index()).copied().flatten())
    }

    /// The nearest-SNI-front-end claim for a cell.
    pub fn tls_claim(&self, svc: ServiceId, city: u32) -> Option<Asn> {
        self.tls_nearest_as
            .get(&svc)
            .and_then(|v| v.get(city as usize).copied().flatten())
    }

    /// The catalogue prior's claim (always present for a valid service).
    pub fn prior_claim(&self, svc: ServiceId) -> Option<Asn> {
        self.catalog_prior_as.get(svc.index()).copied()
    }

    /// Host AS of a serving address (memoized footprint lookup).
    pub fn owner_of(&self, addr: Ipv4Addr) -> Option<Asn> {
        self.addr_owner.get(&addr.0).copied()
    }

    /// Whether cache probing claims the prefix hosts users.
    pub fn cache_claim(&self, p: PrefixId) -> bool {
        self.cache_prefix.get(p.index()).copied().unwrap_or(false)
    }

    /// Whether the root crawl claims the AS hosts users.
    pub fn root_claim(&self, a: Asn) -> bool {
        self.root_as.get(a.index()).copied().unwrap_or(false)
    }
}

/// Replica-plane estimator names, in the fixed order claims are listed.
pub const REPLICA_TECHNIQUES: [&str; 4] = ["ecs", "anycast", "tls_nearest", "catalog_prior"];

/// One prefix of the audited universe, with everything the per-cell loop
/// needs precomputed.
struct UniversePrefix {
    id: PrefixId,
    owner: Asn,
    city: u32,
    tier: &'static str,
    populated: bool,
}

/// The delivery class a service is audited under.
fn service_class(svc: &Service) -> &'static str {
    match (svc.mode, svc.ecs_support) {
        (DeliveryMode::Anycast, _) => "anycast",
        (DeliveryMode::CustomUrl, _) => "custom_url",
        (DeliveryMode::DnsRedirection, true) => "dns_ecs",
        (DeliveryMode::DnsRedirection, false) => "dns_no_ecs",
    }
}

fn tier_name(users: f64, p50: f64, p90: f64) -> &'static str {
    if users <= 0.0 {
        "t0_none"
    } else if users <= p50 {
        "t1_low"
    } else if users <= p90 {
        "t2_mid"
    } else {
        "t3_high"
    }
}

fn verdict_for(claim: Option<Asn>, truth: Asn) -> Verdict {
    match claim {
        Some(c) if c == truth => Verdict::Asserted,
        Some(_) => Verdict::Contradicted,
        None => Verdict::Silent,
    }
}

/// The ground-truth serving AS for one `(service, prefix)` cell: the
/// substrate's redirection policy (off-net in the client AS, else the
/// nearest on-net PoP).
pub fn truth_serving_as(s: &Substrate, svc: ServiceId, owner: Asn, city: u32) -> Asn {
    let e = s.frontends.select(&s.topo, svc, owner, city);
    e.offnet_host.unwrap_or(e.asn)
}

/// Per-technique verdicts for a single cell, for `repro --explain`.
#[derive(Debug, Clone)]
pub struct CellVerdict {
    /// Technique name (a key of [`QualityReport::techniques`]).
    pub technique: &'static str,
    /// The claim, if the technique spoke.
    pub claimed: Option<Asn>,
    /// How the claim scored against the truth.
    pub verdict: Verdict,
}

/// Score one cell across every replica estimator (fused last).
pub fn explain_cell(
    s: &Substrate,
    map: &TrafficMap,
    claims: &MapClaims,
    p: PrefixId,
    svc: ServiceId,
) -> (Asn, Vec<CellVerdict>) {
    let rec = s.topo.prefixes.get(p);
    let truth = truth_serving_as(s, svc, rec.owner, rec.city);
    let ecs = map
        .user_mapping
        .mapping
        .get(svc, p)
        .and_then(|addr| claims.owner_of(addr));
    let anycast = claims.anycast_claim(svc, rec.owner);
    let tls = claims.tls_claim(svc, rec.city);
    let prior = claims.prior_claim(svc);
    let fused = ecs.or(anycast).or(prior);
    let verdicts = [
        ("ecs", ecs),
        ("anycast", anycast),
        ("tls_nearest", tls),
        ("catalog_prior", prior),
        ("fused", fused),
    ]
    .into_iter()
    .map(|(technique, claimed)| CellVerdict {
        technique,
        claimed,
        verdict: verdict_for(claimed, truth),
    })
    .collect();
    (truth, verdicts)
}

/// Run the full quality audit of a map against its substrate.
///
/// Pure function of `(substrate, map)`: reuses the map's recorded claim
/// tables when [`crate::MapConfig::record_claims`] was on, rebuilds them
/// otherwise, and returns the same report either way.
pub fn audit(s: &Substrate, map: &TrafficMap) -> QualityReport {
    let _span = itm_obs::span("map.audit");
    let rebuilt;
    let claims = match &map.claims {
        Some(c) => c,
        None => {
            rebuilt = MapClaims::record(s, map);
            &rebuilt
        }
    };

    // ---- Cell universe: user-access prefixes ∪ cache-discovered ones ----
    let universe_ids: Vec<PrefixId> = s
        .topo
        .prefixes
        .iter()
        .filter(|r| r.kind == PrefixKind::UserAccess || claims.cache_claim(r.id))
        .map(|r| r.id)
        .collect();

    // Population-tier thresholds: p50/p90 of positive user counts.
    let mut positive: Vec<f64> = universe_ids
        .iter()
        .map(|&p| s.users.users_of(p))
        .filter(|&u| u > 0.0)
        .collect();
    positive.sort_by(|a, b| a.total_cmp(b));
    let pick = |q: usize| -> f64 {
        if positive.is_empty() {
            0.0
        } else {
            positive[(positive.len() * q / 100).min(positive.len() - 1)]
        }
    };
    let (p50, p90) = (pick(50), pick(90));

    let universe: Vec<UniversePrefix> = universe_ids
        .iter()
        .map(|&p| {
            let rec = s.topo.prefixes.get(p);
            let users = s.users.users_of(p);
            UniversePrefix {
                id: p,
                owner: rec.owner,
                city: rec.city,
                tier: tier_name(users, p50, p90),
                populated: users > 0.0,
            }
        })
        .collect();

    let mut report = QualityReport {
        seed: s.seed,
        services: s.catalog.len() as u64,
        prefixes: universe.len() as u64,
        cells: (s.catalog.len() as u64) * (universe.len() as u64),
        tier_p50: p50,
        tier_p90: p90,
        ..QualityReport::default()
    };

    // ---- Replica plane ----
    let mut audits: BTreeMap<&'static str, TechniqueAudit> = ["fused"]
        .iter()
        .chain(REPLICA_TECHNIQUES.iter())
        .map(|&name| (name, TechniqueAudit::new("replica")))
        .collect();
    let mut disagreement = DisagreementIndex::default();
    let mut pairwise = PairwiseAgreement::default();

    for svc in &s.catalog.services {
        let class = service_class(svc);
        let anycast_table = claims.anycast_site_as.get(&svc.id);
        let tls_table = claims.tls_nearest_as.get(&svc.id);
        let prior = claims.prior_claim(svc.id);
        // Walk the service's measured cells in lockstep with the
        // ascending prefix sweep: both are sorted by prefix id.
        let mut measured = map.user_mapping.cells_of(svc.id).peekable();
        for up in &universe {
            let truth = truth_serving_as(s, svc.id, up.owner, up.city);
            let mut ecs = None;
            while let Some(&(mp, addr)) = measured.peek() {
                if mp < up.id {
                    measured.next();
                } else {
                    if mp == up.id {
                        ecs = claims.owner_of(addr);
                    }
                    break;
                }
            }
            let anycast = anycast_table.and_then(|t| t.get(up.owner.index()).copied().flatten());
            let tls = tls_table.and_then(|t| t.get(up.city as usize).copied().flatten());
            let fused = ecs.or(anycast).or(prior);

            let mut cell: Vec<(&str, u32)> = Vec::with_capacity(5);
            for (name, claim) in [
                ("ecs", ecs),
                ("anycast", anycast),
                ("tls_nearest", tls),
                ("catalog_prior", prior),
            ] {
                if let Some(a) = audits.get_mut(name) {
                    a.record(Some(class), Some(up.tier), verdict_for(claim, truth), true);
                }
                if let Some(c) = claim {
                    cell.push((name, c.raw()));
                }
            }
            disagreement.observe(&cell);
            if let Some(c) = fused {
                cell.push(("fused", c.raw()));
            }
            pairwise.observe(&cell);
            if let Some(a) = audits.get_mut("fused") {
                a.record(Some(class), Some(up.tier), verdict_for(fused, truth), true);
            }
        }
    }

    // ---- Presence plane ----
    let mut cache = TechniqueAudit::new("presence");
    let mut populated_as = vec![false; s.topo.n_ases()];
    for up in &universe {
        let claimed = claims.cache_claim(up.id);
        let v = match (claimed, up.populated) {
            (true, true) => Verdict::Asserted,
            (true, false) => Verdict::Contradicted,
            (false, _) => Verdict::Silent,
        };
        cache.record(None, Some(up.tier), v, up.populated);
        if up.populated {
            if let Some(slot) = populated_as.get_mut(up.owner.index()) {
                *slot = true;
            }
        }
    }
    let mut root = TechniqueAudit::new("presence");
    for (i, &truth) in populated_as.iter().enumerate() {
        let asn = Asn(i as u32);
        let v = match (claims.root_claim(asn), truth) {
            (true, true) => Verdict::Asserted,
            (true, false) => Verdict::Contradicted,
            (false, _) => Verdict::Silent,
        };
        root.record(None, None, v, truth);
    }

    // ---- Routes plane ----
    let mut cloud = TechniqueAudit::new("routes");
    let truth_links: std::collections::BTreeSet<(Asn, Asn)> =
        s.topo.links.iter().map(|l| l.key()).collect();
    let claimed_links = map.cloud_result.claimed_links();
    for link in truth_links.union(claimed_links) {
        let is_true = truth_links.contains(link);
        let v = match (claimed_links.contains(link), is_true) {
            (true, true) => Verdict::Asserted,
            (true, false) => Verdict::Contradicted,
            (false, _) => Verdict::Silent,
        };
        cloud.record(None, None, v, is_true);
    }

    for (name, a) in audits {
        report.techniques.insert(name.to_string(), a);
    }
    report.techniques.insert("cache_probe".to_string(), cache);
    report.techniques.insert("root_crawl".to_string(), root);
    report.techniques.insert("cloud_probe".to_string(), cloud);
    report.disagreement = disagreement;
    report.pairwise = pairwise;
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::map::MapConfig;
    use itm_measure::SubstrateConfig;

    fn build() -> (Substrate, TrafficMap) {
        let s = Substrate::build(SubstrateConfig::small(), 139).unwrap();
        let cfg = MapConfig {
            record_claims: true,
            ..MapConfig::default()
        };
        let m = TrafficMap::build(&s, &cfg).expect("map build");
        (s, m)
    }

    #[test]
    fn claims_recorded_and_bitmap_covers_mapping() {
        let (_s, m) = build();
        let claims = m.claims.as_ref().expect("claims recorded");
        assert_eq!(claims.cell_bits.len(), m.user_mapping.mapping.len());
        // Every measured cell is, by construction, an ECS claim backed by
        // the catalogue prior.
        for &b in &claims.cell_bits {
            assert_ne!(b & bits::ECS, 0);
            assert_ne!(b & bits::CATALOG_PRIOR, 0);
        }
    }

    #[test]
    fn audit_is_consistent_and_covers_all_planes() {
        let (s, m) = build();
        let q = audit(&s, &m);
        assert!(q.is_consistent());
        for name in [
            "ecs",
            "anycast",
            "tls_nearest",
            "catalog_prior",
            "fused",
            "cache_probe",
            "root_crawl",
            "cloud_probe",
        ] {
            assert!(q.techniques.contains_key(name), "missing {name}");
        }
        // Replica universes all have the same size: services × prefixes.
        for name in ["ecs", "anycast", "tls_nearest", "catalog_prior", "fused"] {
            assert_eq!(q.techniques[name].overall.cells, q.cells, "{name}");
        }
        // ECS is near-perfect where it speaks (the technique's promise).
        let ecs = &q.techniques["ecs"].overall;
        assert!(ecs.precision() > 0.999, "ecs precision {}", ecs.precision());
        // The prior speaks everywhere.
        let prior = &q.techniques["catalog_prior"].overall;
        assert_eq!(prior.silent, 0);
        // Cloud probing never invents links.
        let cloud = &q.techniques["cloud_probe"].overall;
        assert_eq!(cloud.contradicted, 0);
        assert!(cloud.recall() > 0.0);
    }

    #[test]
    fn audit_matches_with_and_without_recorded_claims() {
        let s = Substrate::build(SubstrateConfig::small(), 139).unwrap();
        let plain = TrafficMap::build(&s, &MapConfig::default()).unwrap();
        let cfg = MapConfig {
            record_claims: true,
            ..MapConfig::default()
        };
        let recorded = TrafficMap::build(&s, &cfg).unwrap();
        let a = serde_json::to_string(&audit(&s, &plain).to_json_value()).unwrap();
        let b = serde_json::to_string(&audit(&s, &recorded).to_json_value()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn fused_estimator_mirrors_the_map_cascade() {
        let (s, m) = build();
        let claims = m.claims.as_ref().unwrap();
        let mut checked = 0;
        for r in s.topo.prefixes.iter().take(200) {
            if r.kind != PrefixKind::UserAccess {
                continue;
            }
            for svc in s.catalog.services.iter().take(10) {
                let (_, verdicts) = explain_cell(&s, &m, claims, r.id, svc.id);
                let fused = verdicts
                    .iter()
                    .find(|v| v.technique == "fused")
                    .and_then(|v| v.claimed);
                assert_eq!(fused, m.serving_as_for(&s, r.id, svc.id));
                checked += 1;
            }
        }
        assert!(checked > 0);
    }

    #[test]
    fn explain_cell_scores_a_measured_cell() {
        let (s, m) = build();
        let claims = m.claims.as_ref().unwrap();
        let first = m.user_mapping.mapping.iter().next().unwrap();
        let (svc, p) = (first.service, first.prefix);
        let (truth, verdicts) = explain_cell(&s, &m, claims, p, svc);
        assert_eq!(verdicts.len(), 5);
        let ecs = verdicts.iter().find(|v| v.technique == "ecs").unwrap();
        // The measured mapping is exact for ECS services, so the claim
        // matches the truth.
        assert_eq!(ecs.claimed, Some(truth));
        assert_eq!(ecs.verdict, Verdict::Asserted);
    }
}
