//! Deterministic shard executor for the map build.
//!
//! Campaigns split their input into a fixed number of shards — a function
//! of the input size, never of the machine — and hand the executor a pure
//! per-shard job. The executor only decides *where* shards run; results
//! always come back in shard-index order, so the merged output is
//! byte-identical whether one thread or sixteen did the work.
//!
//! This is the only file in the workspace allowed to spawn threads
//! (enforced by lint rule D004): all other code must route parallelism
//! through here so the seed-domain discipline (one derived RNG stream per
//! shard, see `SeedDomain::shard`) cannot be bypassed.

use std::sync::atomic::{AtomicUsize, Ordering};

/// A worker pool that maps pure shard jobs to index-ordered results.
#[derive(Debug, Clone, Copy)]
pub struct ParallelExecutor {
    threads: usize,
}

impl ParallelExecutor {
    /// An executor running up to `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> ParallelExecutor {
        ParallelExecutor {
            threads: threads.max(1),
        }
    }

    /// The sequential executor: shards run in index order on the calling
    /// thread. `build` and `build_with(.., &sequential())` are the same
    /// computation by construction.
    pub fn sequential() -> ParallelExecutor {
        ParallelExecutor { threads: 1 }
    }

    /// An executor sized to the machine's available parallelism.
    pub fn available() -> ParallelExecutor {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        ParallelExecutor { threads }
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run `job(0..n)` and return the results in index order.
    ///
    /// `job` must be pure with respect to the shard index: the output for
    /// shard `k` may not depend on which worker runs it or in what order.
    /// With one thread (or one shard) the jobs run inline on the calling
    /// thread, preserving the sequential path exactly.
    pub fn map<T, F>(&self, n: usize, job: &F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync + ?Sized,
    {
        if self.threads == 1 || n <= 1 {
            return (0..n).map(job).collect();
        }
        let workers = self.threads.min(n);
        let next = AtomicUsize::new(0);
        let mut indexed: Vec<(usize, T)> = Vec::with_capacity(n);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut out = Vec::new();
                        loop {
                            let k = next.fetch_add(1, Ordering::Relaxed);
                            if k >= n {
                                break;
                            }
                            out.push((k, job(k)));
                        }
                        out
                    })
                })
                .collect();
            for h in handles {
                match h.join() {
                    Ok(part) => indexed.extend(part),
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
        });
        // Completion order is scheduler-dependent; index order is not.
        indexed.sort_by_key(|&(k, _)| k);
        indexed.into_iter().map(|(_, v)| v).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_index_order() {
        for threads in [1, 2, 8] {
            let exec = ParallelExecutor::new(threads);
            let out = exec.map(100, &|k| k * k);
            assert_eq!(out, (0..100).map(|k| k * k).collect::<Vec<_>>());
        }
    }

    #[test]
    fn map_handles_empty_and_single() {
        let exec = ParallelExecutor::new(8);
        assert!(exec.map(0, &|k| k).is_empty());
        assert_eq!(exec.map(1, &|k| k + 7), vec![7]);
    }

    #[test]
    fn thread_count_is_clamped() {
        assert_eq!(ParallelExecutor::new(0).threads(), 1);
        assert!(ParallelExecutor::available().threads() >= 1);
    }

    #[test]
    fn parallel_matches_sequential() {
        let seq = ParallelExecutor::sequential().map(257, &|k| (k, k as u64 * 31));
        let par = ParallelExecutor::new(8).map(257, &|k| (k, k as u64 * 31));
        assert_eq!(seq, par);
    }
}
