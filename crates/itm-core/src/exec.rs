//! Deterministic shard executor for the map build.
//!
//! Campaigns split their input into a fixed number of shards — a function
//! of the input size, never of the machine — and hand the executor a pure
//! per-shard job. The executor only decides *where* shards run; results
//! always come back in shard-index order, so the merged output is
//! byte-identical whether one thread or sixteen did the work.
//!
//! This is the only file in the workspace allowed to spawn threads
//! (enforced by lint rule D004): all other code must route parallelism
//! through here so the seed-domain discipline (one derived RNG stream per
//! shard, see `SeedDomain::shard`) cannot be bypassed.
//!
//! Beyond placement, the executor carries two observability duties
//! (DESIGN.md §11):
//!
//! * **Utilization metrics** — when the metrics registry is enabled, each
//!   `map` call records per-shard wall time (`exec.shard_ns`), the delay
//!   between batch start and each shard starting (`exec.queue_wait_ns`),
//!   and the batch's shard-skew ratio (`exec.skew_x1000` =
//!   slowest-shard ÷ mean-shard × 1000 — 1000 means perfectly balanced
//!   shards). Disabled, no clock is read.
//! * **Deterministic parallel traces** — when the trace log is enabled,
//!   worker-thread emissions are captured per shard and replayed on the
//!   calling thread in shard-index order after the barrier
//!   ([`itm_obs::trace::capture_begin`]/[`itm_obs::trace::replay`]), so
//!   the trace, like the map, is byte-identical at any thread count and
//!   worker events inherit the caller's campaign scope.
//!
//! The caller's allocation phase (see `itm_obs::alloc`) is likewise
//! propagated onto the workers, so per-phase memory attribution does not
//! leak to "unattributed" just because a campaign ran sharded.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// A worker pool that maps pure shard jobs to index-ordered results.
#[derive(Debug, Clone, Copy)]
pub struct ParallelExecutor {
    threads: usize,
}

impl ParallelExecutor {
    /// An executor running up to `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> ParallelExecutor {
        ParallelExecutor {
            threads: threads.max(1),
        }
    }

    /// The sequential executor: shards run in index order on the calling
    /// thread. `build` and `build_with(.., &sequential())` are the same
    /// computation by construction.
    pub fn sequential() -> ParallelExecutor {
        ParallelExecutor { threads: 1 }
    }

    /// An executor sized to the machine's available parallelism.
    pub fn available() -> ParallelExecutor {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        ParallelExecutor { threads }
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run `job(0..n)` and return the results in index order.
    ///
    /// `job` must be pure with respect to the shard index: the output for
    /// shard `k` may not depend on which worker runs it or in what order.
    /// With one thread (or one shard) the jobs run inline on the calling
    /// thread, preserving the sequential path exactly.
    pub fn map<T, F>(&self, n: usize, job: &F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync + ?Sized,
    {
        let metrics = itm_obs::enabled();
        // itm-lint: allow(D001): executor utilization timing is observability-only wall time and never feeds the map
        let t0 = if metrics { Some(Instant::now()) } else { None };
        if self.threads == 1 || n <= 1 {
            let Some(t0) = t0 else {
                return (0..n).map(job).collect();
            };
            // Sequential, metered: shard k's queue wait is the time the
            // earlier shards occupied the calling thread.
            let mut out = Vec::with_capacity(n);
            let mut durs = Vec::with_capacity(n);
            for k in 0..n {
                itm_obs::histogram!("exec.queue_wait_ns").record(t0.elapsed().as_nanos() as u64);
                // itm-lint: allow(D001): executor utilization timing is observability-only wall time and never feeds the map
                let started = Instant::now();
                out.push(job(k));
                let d = started.elapsed().as_nanos() as u64;
                itm_obs::histogram!("exec.shard_ns").record(d);
                durs.push(d);
            }
            record_batch(&durs);
            return out;
        }
        let workers = self.threads.min(n);
        let next = AtomicUsize::new(0);
        let traced = itm_obs::trace::enabled();
        // Attribute worker allocations to the phase the caller is in.
        let phase = itm_obs::alloc::current_phase();
        let mut indexed: Vec<Completed<T>> = Vec::with_capacity(n);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let _phase = phase.map(itm_obs::alloc::enter_phase);
                        let mut out: Vec<Completed<T>> = Vec::new();
                        loop {
                            let k = next.fetch_add(1, Ordering::Relaxed);
                            if k >= n {
                                break;
                            }
                            if let Some(t0) = t0 {
                                itm_obs::histogram!("exec.queue_wait_ns")
                                    .record(t0.elapsed().as_nanos() as u64);
                            }
                            if traced {
                                itm_obs::trace::capture_begin();
                            }
                            // itm-lint: allow(D001): executor utilization timing is observability-only wall time and never feeds the map
                            let started = if metrics { Some(Instant::now()) } else { None };
                            let value = job(k);
                            let dur_ns = match started {
                                Some(s) => {
                                    let d = s.elapsed().as_nanos() as u64;
                                    itm_obs::histogram!("exec.shard_ns").record(d);
                                    d
                                }
                                None => 0,
                            };
                            let events = if traced {
                                Some(itm_obs::trace::capture_take())
                            } else {
                                None
                            };
                            out.push(Completed {
                                k,
                                value,
                                dur_ns,
                                events,
                            });
                        }
                        out
                    })
                })
                .collect();
            for h in handles {
                match h.join() {
                    Ok(part) => indexed.extend(part),
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
        });
        // Completion order is scheduler-dependent; index order is not.
        indexed.sort_by_key(|c| c.k);
        if metrics {
            let durs: Vec<u64> = indexed.iter().map(|c| c.dur_ns).collect();
            record_batch(&durs);
        }
        // Sequence each shard's captured trace events on this thread, in
        // shard order: the trace becomes independent of scheduling and
        // the events inherit this thread's campaign scope.
        indexed
            .into_iter()
            .map(|c| {
                if let Some(events) = c.events {
                    itm_obs::trace::replay(events);
                }
                c.value
            })
            .collect()
    }
}

/// One finished shard, on its way back to index order.
struct Completed<T> {
    k: usize,
    value: T,
    dur_ns: u64,
    events: Option<itm_obs::trace::CapturedEvents>,
}

/// Record batch-level executor metrics from the per-shard durations:
/// batch/shard counts and the skew ratio (slowest ÷ mean, ×1000).
fn record_batch(durs: &[u64]) {
    itm_obs::counter!("exec.batches").inc();
    itm_obs::counter!("exec.shards").add(durs.len() as u64);
    let n = durs.len() as u64;
    if n == 0 {
        return;
    }
    let total: u64 = durs.iter().sum();
    let max = durs.iter().copied().max().unwrap_or(0);
    if let Some(skew) = max.saturating_mul(1000 * n).checked_div(total) {
        itm_obs::histogram!("exec.skew_x1000").record(skew);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_index_order() {
        for threads in [1, 2, 8] {
            let exec = ParallelExecutor::new(threads);
            let out = exec.map(100, &|k| k * k);
            assert_eq!(out, (0..100).map(|k| k * k).collect::<Vec<_>>());
        }
    }

    #[test]
    fn map_handles_empty_and_single() {
        let exec = ParallelExecutor::new(8);
        assert!(exec.map(0, &|k| k).is_empty());
        assert_eq!(exec.map(1, &|k| k + 7), vec![7]);
    }

    #[test]
    fn thread_count_is_clamped() {
        assert_eq!(ParallelExecutor::new(0).threads(), 1);
        assert!(ParallelExecutor::available().threads() >= 1);
    }

    #[test]
    fn parallel_matches_sequential() {
        let seq = ParallelExecutor::sequential().map(257, &|k| (k, k as u64 * 31));
        let par = ParallelExecutor::new(8).map(257, &|k| (k, k as u64 * 31));
        assert_eq!(seq, par);
    }

    #[test]
    fn skew_of_balanced_batch_is_1000() {
        // Equal durations: max * 1000 * n / total == 1000 exactly.
        let durs = [5u64, 5, 5, 5];
        let n = durs.len() as u64;
        let total: u64 = durs.iter().sum();
        assert_eq!(5u64.saturating_mul(1000 * n) / total, 1000);
    }
}
