//! Serializable map exports.
//!
//! A downstream user of the traffic map — the researcher who wants to
//! weight a CDF, the operator assessing an outage — needs the map as
//! *data*, not as a live borrow of the substrate. [`MapSummary`] is the
//! portable form: every component in plain serde types, with enough
//! provenance (seed, config scale) to regenerate the full map.

use crate::map::TrafficMap;
use itm_measure::Substrate;
use itm_types::{Asn, FaultStats, Ipv4Net, ServiceId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The portable form of a built traffic map.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MapSummary {
    /// Provenance: master seed of the substrate.
    pub seed: u64,
    /// Provenance: AS count of the substrate.
    pub n_ases: usize,
    /// Component 1: /24s identified as hosting users.
    pub user_prefixes: Vec<Ipv4Net>,
    /// Component 1: fused relative activity per AS (max-normalized).
    pub activity: BTreeMap<u32, f64>,
    /// Component 2: per-service serving-address counts.
    pub service_footprint_sizes: BTreeMap<u32, usize>,
    /// Component 2: off-net deployments found (hypergiant ASN, host ASN).
    pub offnets: Vec<(u32, u32)>,
    /// Component 2: number of measurable user→host mapping cells.
    pub mapping_cells: usize,
    /// Component 3: directed edge count of the route view.
    pub route_edges: usize,
    /// Visibility: fraction of peering invisible to collectors.
    pub invisible_peering: f64,
    /// Per-technique fault accounting (`observed + degraded + lost`
    /// equals the probes issued per technique). Empty for clean builds —
    /// and omitted from the JSON entirely, so clean summaries stay
    /// byte-identical to pre-fault-injection output.
    pub faults: BTreeMap<String, FaultStats>,
}

// The offline serde shim has no derive-driven data model, so the one type
// this workspace actually exports as JSON spells out its field mapping.
// Map-valued fields serialize with sorted keys so the output is a pure
// function of the map's content, independent of hash iteration order.
impl serde_json::Serialize for MapSummary {
    fn to_json_value(&self) -> serde_json::Value {
        use serde_json::{Map, Value};
        let sorted_obj = |m: &BTreeMap<u32, f64>| -> Value {
            let mut keys: Vec<u32> = m.keys().copied().collect();
            keys.sort_unstable();
            Value::Object(
                keys.iter()
                    .map(|k| (k.to_string(), Value::from(m[k])))
                    .collect::<Map>(),
            )
        };
        let mut sizes: Vec<(u32, usize)> = self
            .service_footprint_sizes
            .iter()
            .map(|(k, v)| (*k, *v))
            .collect();
        sizes.sort_unstable();
        let mut out = serde_json::json!({
            "seed": (self.seed),
            "n_ases": (self.n_ases),
            "user_prefixes": (Value::Array(
                self.user_prefixes.iter().map(|p| Value::from(p.to_string())).collect(),
            )),
            "activity": (sorted_obj(&self.activity)),
            "service_footprint_sizes": (Value::Object(
                sizes.iter().map(|(k, v)| (k.to_string(), Value::from(*v))).collect::<Map>(),
            )),
            "offnets": (Value::Array(
                self.offnets
                    .iter()
                    .map(|(hg, host)| Value::Array(vec![Value::from(*hg), Value::from(*host)]))
                    .collect(),
            )),
            "mapping_cells": (self.mapping_cells),
            "route_edges": (self.route_edges),
            "invisible_peering": (self.invisible_peering),
        });
        // Present only for fault-injected builds: clean summaries must
        // stay byte-identical to output that predates the fault model.
        if !self.faults.is_empty() {
            let techniques: Map = self
                .faults
                .iter()
                .map(|(name, st)| {
                    (
                        name.clone(),
                        serde_json::json!({
                            "observed": (st.observed),
                            "degraded": (st.degraded),
                            "lost": (st.lost),
                            "retries": (st.retries),
                        }),
                    )
                })
                .collect();
            if let Value::Object(ref mut m) = out {
                m.insert("faults".to_string(), Value::Object(techniques));
            }
        }
        out
    }
}

impl serde_json::Deserialize for MapSummary {
    fn from_json_value(v: &serde_json::Value) -> Result<MapSummary, serde_json::Error> {
        use serde_json::{Error, Value};
        let field = |name: &str| -> Result<&Value, Error> {
            v.get(name)
                .ok_or_else(|| Error::new(format!("MapSummary: missing field `{name}`")))
        };
        let num_map = |name: &str| -> Result<BTreeMap<u32, f64>, Error> {
            match field(name)? {
                Value::Object(m) => m
                    .iter()
                    .map(|(k, val)| {
                        let key: u32 = k
                            .parse()
                            .map_err(|_| Error::new(format!("{name}: bad key {k:?}")))?;
                        let x = val
                            .as_f64()
                            .ok_or_else(|| Error::new(format!("{name}: non-numeric value")))?;
                        Ok((key, x))
                    })
                    .collect(),
                _ => Err(Error::new(format!("{name}: expected object"))),
            }
        };
        let user_prefixes = match field("user_prefixes")? {
            Value::Array(items) => items
                .iter()
                .map(|p| {
                    p.as_str()
                        .and_then(|s| s.parse::<Ipv4Net>().ok())
                        .ok_or_else(|| Error::new("user_prefixes: bad prefix"))
                })
                .collect::<Result<Vec<Ipv4Net>, Error>>()?,
            _ => return Err(Error::new("user_prefixes: expected array")),
        };
        let offnets = match field("offnets")? {
            Value::Array(items) => items
                .iter()
                .map(|pair| match pair.as_array().map(Vec::as_slice) {
                    Some([a, b]) => match (a.as_u64(), b.as_u64()) {
                        (Some(hg), Some(host)) => Ok((hg as u32, host as u32)),
                        _ => Err(Error::new("offnets: non-integer ASN")),
                    },
                    _ => Err(Error::new("offnets: expected [hg, host] pair")),
                })
                .collect::<Result<Vec<(u32, u32)>, Error>>()?,
            _ => return Err(Error::new("offnets: expected array")),
        };
        let uint = |name: &str| -> Result<u64, Error> {
            field(name)?
                .as_u64()
                .ok_or_else(|| Error::new(format!("{name}: expected integer")))
        };
        // Optional: absent in clean summaries and in files written before
        // the fault model existed.
        let mut faults: BTreeMap<String, FaultStats> = BTreeMap::new();
        if let Some(Value::Object(m)) = v.get("faults") {
            for (name, st) in m.iter() {
                let count = |key: &str| -> Result<u64, Error> {
                    st.get(key)
                        .and_then(Value::as_u64)
                        .ok_or_else(|| Error::new(format!("faults.{name}.{key}: expected integer")))
                };
                faults.insert(
                    name.clone(),
                    FaultStats {
                        observed: count("observed")?,
                        degraded: count("degraded")?,
                        lost: count("lost")?,
                        retries: count("retries")?,
                    },
                );
            }
        }
        Ok(MapSummary {
            seed: uint("seed")?,
            n_ases: uint("n_ases")? as usize,
            user_prefixes,
            activity: num_map("activity")?,
            service_footprint_sizes: num_map("service_footprint_sizes")?
                .into_iter()
                .map(|(k, v)| (k, v as usize))
                .collect(),
            offnets,
            mapping_cells: uint("mapping_cells")? as usize,
            route_edges: uint("route_edges")? as usize,
            invisible_peering: field("invisible_peering")?
                .as_f64()
                .ok_or_else(|| Error::new("invisible_peering: expected number"))?,
            faults,
        })
    }
}

impl MapSummary {
    /// Extract the portable summary from a built map.
    pub fn extract(s: &Substrate, map: &TrafficMap) -> MapSummary {
        let mut user_prefixes: Vec<Ipv4Net> = map
            .user_prefixes
            .iter()
            .map(|&p| s.topo.prefixes.get(p).net)
            .collect();
        user_prefixes.sort();
        let activity = map
            .activity
            .iter()
            .map(|(a, e)| (a.raw(), e.fused))
            .collect();
        let service_footprint_sizes = map
            .sni_footprints
            .iter()
            .map(|(svc, addrs)| (svc.raw(), addrs.len()))
            .collect();
        let mut offnets: Vec<(u32, u32)> = map
            .offnet_servers
            .iter()
            .map(|f| (f.hypergiant.raw(), f.host.raw()))
            .collect();
        offnets.sort_unstable();
        offnets.dedup();
        MapSummary {
            seed: s.seed,
            n_ases: s.topo.n_ases(),
            user_prefixes,
            activity,
            service_footprint_sizes,
            offnets,
            mapping_cells: map.user_mapping.mapping.len(),
            route_edges: map.route_view.n_edges_directed(),
            invisible_peering: map
                .visibility
                .invisible_fraction("all-peering")
                .unwrap_or(0.0),
            faults: map.fault_report.clone(),
        }
    }

    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }

    /// Parse from JSON.
    pub fn from_json(s: &str) -> Result<MapSummary, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// The activity weight for an AS (the "weight your CDF" entry point
    /// of the paper's call to action) — 0 for unknown ASes.
    pub fn weight_of(&self, asn: Asn) -> f64 {
        self.activity.get(&asn.raw()).copied().unwrap_or(0.0)
    }

    /// Footprint size for a service.
    pub fn footprint_of(&self, svc: ServiceId) -> usize {
        self.service_footprint_sizes
            .get(&svc.raw())
            .copied()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::map::MapConfig;
    use itm_measure::SubstrateConfig;

    fn build() -> (Substrate, TrafficMap) {
        let s = Substrate::build(SubstrateConfig::small(), 197).unwrap();
        let m = TrafficMap::build(&s, &MapConfig::default()).expect("map build");
        (s, m)
    }

    #[test]
    fn json_round_trip_preserves_everything() {
        let (s, m) = build();
        let summary = MapSummary::extract(&s, &m);
        let json = summary.to_json().expect("serializable");
        let back = MapSummary::from_json(&json).unwrap();
        assert_eq!(back.seed, summary.seed);
        assert_eq!(back.user_prefixes, summary.user_prefixes);
        assert_eq!(back.mapping_cells, summary.mapping_cells);
        assert_eq!(back.offnets, summary.offnets);
        assert_eq!(back.route_edges, summary.route_edges);
        assert_eq!(back.activity.len(), summary.activity.len());
    }

    #[test]
    fn summary_is_consistent_with_map() {
        let (s, m) = build();
        let summary = MapSummary::extract(&s, &m);
        assert_eq!(summary.user_prefixes.len(), m.user_prefixes.len());
        assert_eq!(summary.n_ases, s.topo.n_ases());
        assert!(summary.invisible_peering > 0.5);
        // Weights exist for active eyeballs.
        let some_active = m.activity.iter().next().unwrap();
        assert!(summary.weight_of(*some_active.0) >= 0.0);
    }

    #[test]
    fn prefixes_are_sorted_and_unique() {
        let (s, m) = build();
        let summary = MapSummary::extract(&s, &m);
        for w in summary.user_prefixes.windows(2) {
            assert!(w[0] < w[1]);
        }
    }
}
