//! Scoring the map against ground truth: E1 (Table 1), E2 (Fig. 1a),
//! E3 (Fig. 1b), E7 (§3.1.2 coverage claims).

use crate::map::TrafficMap;
use itm_measure::Substrate;
use itm_types::{Asn, Country, FaultStats, PopId, PrefixId};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// The coverage numbers §3.1.2 reports against CDN ground truth (E7).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CoverageReport {
    /// Traffic share of prefixes discovered by cache probing
    /// (paper: ≈95%).
    pub cache_probe_traffic: f64,
    /// Traffic share of ASes identified by root-log crawling
    /// (paper: ≈60%).
    pub root_logs_traffic: f64,
    /// Traffic share of the union (paper: ≈99%).
    pub union_traffic: f64,
    /// False-discovery rate of cache probing (paper: <1%).
    pub false_discovery_rate: f64,
    /// Share of (APNIC-estimated) Internet users in identified ASes
    /// (paper: ≈98%).
    pub apnic_user_share: f64,
    /// Count of prefixes discovered.
    pub prefixes_found: usize,
    /// Count of client ASes identified (either technique).
    pub ases_found: usize,
    /// Per-technique fault accounting carried over from the map build
    /// (`observed + degraded + lost` equals the probes issued per
    /// technique; empty for clean builds).
    pub faults: BTreeMap<String, FaultStats>,
}

impl CoverageReport {
    /// Score a built map. `provider` restricts the traffic denominator to
    /// one hypergiant's services (the paper scores against Microsoft's
    /// CDN); `None` uses all popular-service traffic.
    pub fn score(s: &Substrate, map: &TrafficMap, provider: Option<Asn>) -> CoverageReport {
        let cache_probe_traffic = s.traffic.provider_coverage(
            &s.topo,
            &s.users,
            &s.catalog,
            &map.cache_result.discovered,
            provider,
        );
        let root_ases: BTreeSet<Asn> = map.root_result.client_ases(s).into_iter().collect();
        let root_logs_traffic = s
            .traffic
            .provider_coverage_as(&s.topo, &s.users, &s.catalog, &root_ases, provider);

        // Union at prefix granularity: cache-probed prefixes plus all
        // prefixes of root-identified ASes.
        let mut union: BTreeSet<PrefixId> = map.cache_result.discovered.clone();
        for r in s.topo.prefixes.iter() {
            if root_ases.contains(&r.owner) {
                union.insert(r.id);
            }
        }
        let union_traffic = s
            .traffic
            .provider_coverage(&s.topo, &s.users, &s.catalog, &union, provider);

        // APNIC user share: users (per APNIC) in identified ASes over all
        // APNIC-estimated users.
        let cache_ases: BTreeSet<Asn> = map.cache_result.discovered_ases(s);
        let found_ases: BTreeSet<Asn> = cache_ases.union(&root_ases).copied().collect();
        let mut apnic_found = 0.0;
        let mut apnic_total = 0.0;
        for a in &s.topo.ases {
            if let Some(est) = s.apnic.estimate(a.asn) {
                apnic_total += est;
                if found_ases.contains(&a.asn) {
                    apnic_found += est;
                }
            }
        }

        CoverageReport {
            cache_probe_traffic,
            root_logs_traffic,
            union_traffic,
            false_discovery_rate: map.cache_result.false_discovery_rate(s),
            apnic_user_share: if apnic_total > 0.0 {
                apnic_found / apnic_total
            } else {
                0.0
            },
            prefixes_found: map.cache_result.discovered.len(),
            ases_found: found_ases.len(),
            faults: map.fault_report.clone(),
        }
    }

    /// Probes lost across all techniques (0 for a clean build).
    pub fn total_lost(&self) -> u64 {
        self.faults.values().map(|st| st.lost).sum()
    }

    /// Probes that needed retries across all techniques.
    pub fn total_degraded(&self) -> u64 {
        self.faults.values().map(|st| st.degraded).sum()
    }
}

/// Figure 1a data: discovered-prefix count per open-resolver PoP.
pub fn fig1a_pop_counts(map: &TrafficMap) -> BTreeMap<PopId, u32> {
    map.cache_result
        .discovered_by_pop
        .iter()
        .map(|(&k, &v)| (k, v))
        .collect()
}

/// One country's Figure 1b row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig1bRow {
    /// The country.
    pub country: Country,
    /// Percent of the country's APNIC-estimated users in ASes cache
    /// probing identified (the map shading).
    pub user_coverage_pct: f64,
    /// Detected hypergiant server locations in the country (the dots):
    /// distinct (AS, city) pairs from the TLS scan.
    pub server_sites: usize,
}

/// Figure 1b data, one row per country.
pub fn fig1b_rows(s: &Substrate, map: &TrafficMap) -> Vec<Fig1bRow> {
    let found_ases: BTreeSet<Asn> = map.cache_result.discovered_ases(s);
    let mut rows = Vec::new();
    for c in &s.topo.world.countries {
        let mut covered = 0.0;
        let mut total = 0.0;
        for a in &s.topo.ases {
            if a.home_country != c.country {
                continue;
            }
            if let Some(est) = s.apnic.estimate(a.asn) {
                total += est;
                if found_ases.contains(&a.asn) {
                    covered += est;
                }
            }
        }
        // Server dots: detected infrastructure (on-net + off-net) whose
        // city is in the country.
        let mut sites: BTreeSet<(Asn, u32)> = BTreeSet::new();
        for f in map.onnet_servers.iter().chain(&map.offnet_servers) {
            let country = s.topo.world.cities[f.city as usize].country;
            if country == c.country {
                sites.insert((f.hypergiant, f.city));
            }
        }
        rows.push(Fig1bRow {
            country: c.country,
            user_coverage_pct: if total > 0.0 {
                100.0 * covered / total
            } else {
                0.0
            },
            server_sites: sites.len(),
        });
    }
    rows
}

/// One row of the reproduced Table 1: a component, its achieved coverage,
/// and its achieved granularity.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table1Row {
    /// Component name (matches the paper's row labels).
    pub component: String,
    /// Temporal precision achieved by the implementation.
    pub temporal: String,
    /// Network precision achieved.
    pub network_precision: String,
    /// Coverage achieved (free-form, counts and shares).
    pub coverage: String,
}

/// Build the Table 1 reproduction for a scored map.
pub fn table1(s: &Substrate, map: &TrafficMap, report: &CoverageReport) -> Vec<Table1Row> {
    let n_user_prefixes = s.users.user_prefixes(&s.topo).count();
    let n_ases_with_users = s
        .topo
        .ases
        .iter()
        .filter(|a| s.users.subscribers(a.asn) > 0.0)
        .count();
    vec![
        Table1Row {
            component: "Finding prefixes with users".into(),
            temporal: "per-campaign (configurable; default daily)".into(),
            network_precision: "/24 prefix".into(),
            coverage: format!(
                "{} of {} user /24s; {} of {} ASes; {:.1}% of traffic",
                report.prefixes_found,
                n_user_prefixes,
                report.ases_found,
                n_ases_with_users,
                100.0 * report.cache_probe_traffic
            ),
        },
        Table1Row {
            component: "Estimating relative activity".into(),
            temporal: "hourly (hit-rate windows)".into(),
            network_precision: "AS (fused); /24 (cache hits)".into(),
            coverage: format!("{} ASes with activity estimates", map.activity.len()),
        },
        Table1Row {
            component: "Mapping services".into(),
            temporal: "per-scan (weekly)".into(),
            network_precision: "server address / city".into(),
            coverage: format!(
                "{} serving addresses; {} off-net host ASes",
                map.known_server_count(),
                map.offnet_servers
                    .iter()
                    .map(|f| f.host)
                    .collect::<BTreeSet<_>>()
                    .len()
            ),
        },
        Table1Row {
            component: "Mapping users to hosts".into(),
            temporal: "TTL-granularity (minutes-hours)".into(),
            network_precision: "/24 prefix".into(),
            coverage: format!(
                "{} (prefix, service) cells; {} services unmeasurable",
                map.user_mapping.mapping.len(),
                map.user_mapping.unmeasurable.len()
            ),
        },
        Table1Row {
            component: "Routes between services and users".into(),
            temporal: "daily (view refresh)".into(),
            network_precision: "AS path".into(),
            coverage: format!(
                "route view: {} directed edges ({} ground truth)",
                map.route_view.n_edges_directed(),
                2 * s.topo.links.len()
            ),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::map::MapConfig;
    use itm_measure::SubstrateConfig;

    fn build() -> (Substrate, TrafficMap) {
        let s = Substrate::build(SubstrateConfig::small(), 149).unwrap();
        let m = TrafficMap::build(&s, &MapConfig::default()).expect("map build");
        (s, m)
    }

    #[test]
    fn coverage_ordering_matches_the_paper() {
        let (s, m) = build();
        let r = CoverageReport::score(&s, &m, None);
        // The paper's ordering: cache probing > root logs; union >= both.
        assert!(
            r.cache_probe_traffic > r.root_logs_traffic,
            "cache {:.3} vs root {:.3}",
            r.cache_probe_traffic,
            r.root_logs_traffic
        );
        assert!(r.union_traffic >= r.cache_probe_traffic - 1e-12);
        assert!(r.union_traffic >= r.root_logs_traffic - 1e-12);
        assert!(r.cache_probe_traffic > 0.75);
        assert!(r.union_traffic > 0.85);
        assert!(r.false_discovery_rate < 0.02);
        assert!(
            r.apnic_user_share > 0.7,
            "APNIC share {:.3}",
            r.apnic_user_share
        );
    }

    #[test]
    fn provider_scoped_scoring_works() {
        let (s, m) = build();
        let hg = s.topo.hypergiants()[0];
        let r = CoverageReport::score(&s, &m, Some(hg));
        assert!(r.cache_probe_traffic > 0.5);
        assert!(r.union_traffic <= 1.0 + 1e-12);
    }

    #[test]
    fn fig1a_counts_match_campaign() {
        let (_, m) = build();
        let counts = fig1a_pop_counts(&m);
        let total: u32 = counts.values().sum();
        assert_eq!(total as usize, m.cache_result.discovered.len());
    }

    #[test]
    fn fig1b_has_all_countries_with_sane_percentages() {
        let (s, m) = build();
        let rows = fig1b_rows(&s, &m);
        assert_eq!(rows.len(), s.topo.world.countries.len());
        for r in &rows {
            assert!((0.0..=100.0).contains(&r.user_coverage_pct));
        }
        // Most countries should be well covered (the paper reports 98%
        // globally).
        let well = rows.iter().filter(|r| r.user_coverage_pct > 70.0).count();
        assert!(
            well * 2 > rows.len(),
            "only {well}/{} countries covered",
            rows.len()
        );
        // And servers are detected somewhere.
        assert!(rows.iter().any(|r| r.server_sites > 0));
    }

    #[test]
    fn table1_has_five_components() {
        let (s, m) = build();
        let rep = CoverageReport::score(&s, &m, None);
        let t = table1(&s, &m, &rep);
        assert_eq!(t.len(), 5);
        for row in &t {
            assert!(!row.coverage.is_empty());
        }
    }
}
