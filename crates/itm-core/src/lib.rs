//! # itm-core — the Internet Traffic Map
//!
//! The paper's primary contribution is the *map* itself: "identify the
//! locations of users and major services, the paths between them, and the
//! relative activity levels routed along these paths" (abstract). This
//! crate assembles the measurement outputs of `itm-measure` into that map
//! and implements every analysis the paper runs on it:
//!
//! * [`map`] — [`TrafficMap`]: the three components of Table 1 (users +
//!   activity, services + user→host mapping, routes), built end-to-end
//!   from measurements, plus map queries.
//! * [`coverage`] — scoring each component against ground truth: the
//!   §3.1.2 coverage claims (E7), Figure 1a/1b rollups (E2, E3), and the
//!   full Table 1 grid (E1).
//! * [`weighted`] — weighted-vs-unweighted CDF machinery: the §2.1 path
//!   length swing (E5) and anycast optimality (E6).
//! * [`predict`] — the §3.3 path-prediction experiments over public,
//!   cloud-augmented, and recommender-completed views (E9).
//! * [`recommend`] — the §3.3.3 peering recommender: score co-located
//!   non-adjacent AS pairs by peering-profile similarity, evaluate against
//!   held-out ground truth (E10).
//! * [`epoch`] — the continuous-map loop: deterministic substrate churn
//!   between builds plus incremental rebuilds that recompute only the
//!   campaigns the churn invalidated (`repro --epochs` backend).
//! * [`audit`] — the map-quality observatory: score every measurement
//!   technique's view against substrate ground truth (per-technique
//!   precision/recall/coverage, per-cell disagreement, pairwise
//!   agreement — the `repro --audit` backend).
//! * [`outage`] — the §2.1 use case: "to assess the impact of an outage in
//!   a ⟨region, AS⟩, the map can tell us which popular services are
//!   affected, which prefixes are affected, what fraction of traffic or
//!   users are affected, and where the prefixes may be routed instead".

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod audit;
pub mod coverage;
pub mod epoch;
pub mod exec;
pub mod map;
pub mod outage;
pub mod predict;
pub mod recommend;
pub mod snapshot;
pub mod summary;
pub mod weighted;

pub use audit::{audit, CellVerdict, MapClaims};
pub use coverage::{CoverageReport, Table1Row};
pub use epoch::{apply_epoch, build_incremental, epoch_bounds, map_fingerprint};
pub use exec::ParallelExecutor;
pub use map::{MapConfig, TrafficMap};
pub use outage::{OutageImpact, OutageScenario};
pub use predict::{PredictionExperiment, PredictionReport};
pub use recommend::{PeeringRecommender, RecommendationEval};
pub use snapshot::{snapshot_bytes, write_snapshot};
pub use summary::MapSummary;
pub use weighted::{AnycastAnalysis, PathLengthAnalysis};
