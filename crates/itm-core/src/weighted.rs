//! Weighted-vs-unweighted analyses: the paper's methodological core.
//!
//! §1 opens by indicting "graphing a CDF across Internet paths …, giving
//! each path … equal weight", and §2.1 quantifies the stakes with two
//! examples reproduced here:
//!
//! * **Path lengths** (E5): in an unweighted academic topology "only 2% of
//!   Internet paths were two ASes long", yet "73% of Google queries come
//!   from ASes that either host a Google server or connect directly with
//!   Google or another AS hosting a Google server".
//! * **Anycast optimality** (E6): "While only 31% of routes go to the
//!   closest site, 60% of users are mapped to the optimal site"; and \[38\]:
//!   "80% of clients directed within 500 km of their closest serving
//!   site".

use itm_measure::Substrate;
use itm_routing::{AnycastDeployment, Catchments, GraphView, RoutingTree};
use itm_topology::PrefixKind;
use itm_types::stats::Ecdf;
use itm_types::{Asn, SeedDomain};
use serde::{Deserialize, Serialize};

/// The E5 path-length experiment output.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PathLengthAnalysis {
    /// Unweighted CDF of AS-path lengths from a vantage AS to all ASes
    /// (the iPlane-style view).
    pub unweighted: Ecdf,
    /// Traffic-weighted CDF of path lengths from user ASes to the target
    /// hypergiant, weighting each AS by its demand for that provider.
    pub weighted: Ecdf,
    /// Fraction of paths ≤ 1 hop, unweighted (paper analogue: 2%).
    pub short_paths_unweighted: f64,
    /// Fraction of *traffic* ≤ 1 hop — i.e. the client AS hosts a server
    /// (off-net, length 0) or directly connects to the provider (length
    /// 1). Paper analogue: 73%.
    pub short_traffic_weighted: f64,
}

impl PathLengthAnalysis {
    /// Run E5 against the largest hypergiant.
    ///
    /// "Short" means the client AS hosts a server of the provider
    /// (distance 0 — an off-net) or is adjacent to an AS hosting one
    /// (distance 1), matching the §2.1 wording.
    pub fn run(s: &Substrate, view: &GraphView) -> PathLengthAnalysis {
        let hg = s.topo.hypergiants()[0];
        let tree = RoutingTree::compute(view, hg);

        // Unweighted: path lengths from one academic vantage point's AS to
        // every AS (the "paths to all prefixes" view), measuring hop count
        // of the BGP path between them. iPlane measured from PlanetLab
        // (stub/university networks): use the first stub AS as vantage.
        let vantage = s
            .topo
            .ases
            .iter()
            .find(|a| a.class == itm_topology::AsClass::Stub)
            .map(|a| a.asn)
            .unwrap_or(Asn(0));
        let unweighted_lens =
            unweighted_path_lengths(view, s.topo.ases.iter().map(|a| a.asn), vantage);

        // Weighted: for each user AS, its effective distance to the
        // provider: 0 if it hosts an off-net of hg, else its BGP path
        // length to hg; weight = its demand for hg's services.
        let mut weighted_samples = Vec::new();
        for a in &s.topo.ases {
            let demand: f64 = s
                .catalog
                .served_by(hg)
                .map(|svc| {
                    s.topo
                        .prefixes
                        .owned_by(a.asn)
                        .iter()
                        .filter(|&&p| s.topo.prefixes.get(p).kind == PrefixKind::UserAccess)
                        .map(|&p| {
                            s.traffic
                                .demand(&s.topo, &s.users, &s.catalog, p, svc.id)
                                .raw()
                        })
                        .sum::<f64>()
                })
                .sum();
            if demand <= 0.0 {
                continue;
            }
            let dist = if s.topo.offnets.find(hg, a.asn).is_some() {
                0.0
            } else {
                match tree.path_len(a.asn) {
                    Some(l) => l as f64,
                    None => continue,
                }
            };
            weighted_samples.push((dist, demand));
        }

        let unweighted = Ecdf::unweighted(unweighted_lens);
        let weighted = Ecdf::weighted(weighted_samples);
        PathLengthAnalysis {
            short_paths_unweighted: unweighted.fraction_at(1.0),
            short_traffic_weighted: weighted.fraction_at(1.0),
            unweighted,
            weighted,
        }
    }
}

/// Unweighted AS-path lengths from `vantage` to each destination in
/// `dsts` (skipping the vantage itself and unreachable destinations).
///
/// Destinations are typed `Asn`s taken from the topology, never dense
/// indices cast to `Asn`: a view whose ASNs exceed its AS count (sparse
/// numbering, 32-bit ASNs) would silently alias vantage points under the
/// old index-as-ASN arithmetic.
pub fn unweighted_path_lengths(
    view: &GraphView,
    dsts: impl Iterator<Item = Asn>,
    vantage: Asn,
) -> Vec<f64> {
    let mut lens = Vec::new();
    for dst in dsts {
        let t = RoutingTree::compute(view, dst);
        if let Some(l) = t.path_len(vantage) {
            if dst != vantage {
                lens.push(l as f64);
            }
        }
    }
    lens
}

/// The E6 anycast-optimality experiment output.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AnycastAnalysis {
    /// Fraction of client *ASes* (routes) landing on their geographically
    /// closest site (paper analogue: 31%).
    pub routes_to_closest: f64,
    /// Fraction of *users* landing on their closest site (paper: 60%).
    pub users_to_optimal: f64,
    /// Fraction of users within 500 km of their closest site's distance
    /// (paper \[38\]: 80% within 500 km of the closest site).
    pub users_within_500km: f64,
    /// User-weighted ECDF of excess distance (km) vs the optimal site.
    pub excess_distance: Ecdf,
}

impl AnycastAnalysis {
    /// Run E6 on an anycast deployment across the largest hypergiant's
    /// on-net cities.
    pub fn run(s: &Substrate, view: &GraphView, noise: f64, seeds: &SeedDomain) -> AnycastAnalysis {
        let hg = s.topo.hypergiants()[0];
        // Sites: the hypergiant's on-net cities plus its off-net host
        // cities (off-nets announce the anycast prefix locally too).
        let mut sites: Vec<(Asn, u32)> =
            s.topo.as_info(hg).cities.iter().map(|&c| (hg, c)).collect();
        for d in s.topo.offnets.of_hypergiant(hg) {
            sites.push((d.host, d.city));
        }
        let dep = AnycastDeployment::new(&s.topo, &sites, noise);
        let catchments = Catchments::compute(&s.topo, view, &dep, seeds);
        Self::score(s, &dep, &catchments)
    }

    /// Score arbitrary catchments against geographic optimality.
    pub fn score(
        s: &Substrate,
        dep: &AnycastDeployment,
        catchments: &Catchments,
    ) -> AnycastAnalysis {
        let mut routes_closest = 0usize;
        let mut routes_total = 0usize;
        let mut users_optimal = 0.0;
        let mut users_within = 0.0;
        let mut users_total = 0.0;
        let mut excess = Vec::new();

        for (client, site) in catchments.iter() {
            let users = s.users.subscribers(client);
            let loc = s.topo.as_location(client);
            let chosen = &dep.sites[site.index()];
            // An empty deployment produces no catchments, so this loop
            // body never runs without a closest site; skip defensively
            // rather than panic.
            let Some(best) = dep.closest_site(loc) else {
                continue;
            };
            // Being served from a site inside the client's own AS (an
            // off-net cache) is optimal by definition: the bytes never
            // leave the access network, whatever the geodesic distance to
            // the cache city.
            let in_as = chosen.asn == client;
            let d_chosen = if in_as {
                0.0
            } else {
                chosen.location.distance_km(loc)
            };
            let d_best = if best.asn == client {
                0.0
            } else {
                best.location.distance_km(loc)
            };
            let is_optimal = in_as || (d_chosen - d_best).abs() < 1.0;

            routes_total += 1;
            if is_optimal {
                routes_closest += 1;
            }
            if users > 0.0 {
                users_total += users;
                if is_optimal {
                    users_optimal += users;
                }
                let excess_km = (d_chosen - d_best).max(0.0);
                if excess_km <= 500.0 {
                    users_within += users;
                }
                excess.push((excess_km, users));
            }
        }

        AnycastAnalysis {
            routes_to_closest: if routes_total > 0 {
                routes_closest as f64 / routes_total as f64
            } else {
                0.0
            },
            users_to_optimal: if users_total > 0.0 {
                users_optimal / users_total
            } else {
                0.0
            },
            users_within_500km: if users_total > 0.0 {
                users_within / users_total
            } else {
                0.0
            },
            excess_distance: Ecdf::weighted(excess),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use itm_measure::SubstrateConfig;

    fn setup() -> Substrate {
        Substrate::build(SubstrateConfig::small(), 151).unwrap()
    }

    #[test]
    fn weighting_flips_the_path_length_story() {
        let s = setup();
        let view = s.full_view();
        let a = PathLengthAnalysis::run(&s, &view);
        // The paper's swing: short paths are rare unweighted, dominant
        // weighted.
        assert!(
            a.short_traffic_weighted > a.short_paths_unweighted + 0.2,
            "weighted {:.3} vs unweighted {:.3}",
            a.short_traffic_weighted,
            a.short_paths_unweighted
        );
        assert!(a.short_traffic_weighted > 0.5);
        assert!(!a.unweighted.is_empty() && !a.weighted.is_empty());
    }

    #[test]
    fn anycast_users_beat_routes() {
        let s = setup();
        let view = s.full_view();
        let a = AnycastAnalysis::run(&s, &view, 0.15, &SeedDomain::new(151));
        // The paper's asymmetry: user-weighted optimality exceeds
        // route-weighted optimality (big networks get better routing).
        assert!(
            a.users_to_optimal >= a.routes_to_closest,
            "users {:.3} vs routes {:.3}",
            a.users_to_optimal,
            a.routes_to_closest
        );
        // Most users end up near-optimal.
        assert!(a.users_within_500km > 0.6, "{:.3}", a.users_within_500km);
        // Neither metric is degenerate.
        assert!(a.routes_to_closest > 0.05 && a.routes_to_closest < 1.0);
    }

    #[test]
    fn path_lengths_survive_asns_above_u16() {
        // A sparse view whose ASNs (all > u16::MAX) are far above its AS
        // count: the old index-as-ASN loop (`Asn(dst as u32)` over
        // `0..n_ases`) computed trees for ASes 0..3, which don't exist
        // here, and returned nothing.
        use itm_topology::{Link, LinkClass};
        use itm_types::IxpId;
        let base = 70_000u32;
        assert!(base > u16::MAX as u32);
        let links = [
            Link::transit(Asn(base), Asn(base + 1)),
            Link::peering(
                Asn(base + 1),
                Asn(base + 2),
                LinkClass::PublicPeering(IxpId(0)),
            ),
        ];
        let view = GraphView::from_links(base as usize + 3, links.iter());
        let dsts = (0..3).map(|i| Asn(base + i));
        let mut lens = super::unweighted_path_lengths(&view, dsts, Asn(base));
        lens.sort_by(f64::total_cmp);
        // 70000 -> 70001 is one hop; 70000 -> 70002 climbs to the provider
        // then crosses its peering, two hops. The vantage itself is skipped.
        assert_eq!(lens, vec![1.0, 2.0]);
    }

    #[test]
    fn zero_noise_improves_optimality() {
        let s = setup();
        let view = s.full_view();
        let clean = AnycastAnalysis::run(&s, &view, 0.0, &SeedDomain::new(1));
        let noisy = AnycastAnalysis::run(&s, &view, 0.6, &SeedDomain::new(1));
        assert!(clean.users_to_optimal >= noisy.users_to_optimal);
    }
}
