//! Tracing must explain the map without perturbing it.
//!
//! One test body (not several) because the trace log is global: parallel
//! test threads toggling it would race. Three properties are checked on a
//! single traced small-substrate run:
//!
//! 1. byte-identical map summary with tracing on vs off (tracing is an
//!    observer, not a participant);
//! 2. every surviving `EdgeAsserted` event joins to a non-empty evidence
//!    chain — no edge the map asserts is unexplained;
//! 3. the Chrome-trace export round-trips as JSON with the schema
//!    Perfetto needs (`traceEvents` with `ph`/`ts`/`pid`/`tid`/`name`,
//!    balanced B/E pairs per thread).

use itm_core::{MapConfig, MapSummary, TrafficMap};
use itm_measure::{Substrate, SubstrateConfig};
use serde_json::Value;

fn build_summary(seed: u64) -> String {
    let s = Substrate::build(SubstrateConfig::small(), seed).unwrap();
    let m = TrafficMap::build(&s, &MapConfig::default()).expect("map build");
    MapSummary::extract(&s, &m).to_json().expect("serializable")
}

#[test]
fn tracing_is_deterministic_and_every_edge_has_evidence() {
    // Baseline: everything off (the default state).
    itm_obs::set_enabled(false);
    itm_obs::trace::set_enabled(false);
    let off = build_summary(42);

    // Same seed, trace ring and metrics registry live.
    itm_obs::set_enabled(true);
    itm_obs::reset();
    itm_obs::trace::set_seed(42);
    itm_obs::trace::reset();
    itm_obs::trace::set_enabled(true);
    let on = build_summary(42);
    let snap = itm_obs::trace::snapshot();
    itm_obs::trace::set_enabled(false);
    itm_obs::set_enabled(false);

    // 1. Tracing never perturbs the map.
    assert_eq!(off, on, "tracing changed the map summary");

    // 2. Every asserted edge is explainable.
    assert!(!snap.records.is_empty(), "traced run recorded nothing");
    let index = itm_obs::ProvenanceIndex::build(&snap);
    let mut edges = 0usize;
    for edge in index.edges() {
        let chain = index.explain_edge(edge);
        assert!(
            !chain.evidence.is_empty(),
            "edge without evidence: {:?}",
            edge.subjects
        );
        // Evidence precedes nothing it depends on: emission order holds.
        for w in chain.evidence.windows(2) {
            assert!(w[0].id < w[1].id);
        }
        edges += 1;
    }
    assert!(edges > 0, "traced run asserted no edges");

    // 3. The Chrome-trace export is schema-valid JSON.
    let exported = serde_json::to_string(&itm_obs::chrome_trace(&snap)).unwrap();
    let v: Value = serde_json::from_str(&exported).expect("trace.json is not valid JSON");
    let events = v
        .get("traceEvents")
        .and_then(|e| e.as_array())
        .expect("traceEvents array");
    assert!(!events.is_empty());
    let other = v.get("otherData").expect("otherData object");
    assert!(other
        .get("dropped_events")
        .and_then(Value::as_u64)
        .is_some());
    assert!(other.get("capacity").and_then(Value::as_u64).is_some());

    let mut open_per_tid: std::collections::HashMap<u64, i64> = std::collections::HashMap::new();
    for ev in events {
        let ph = ev.get("ph").and_then(Value::as_str).expect("ph");
        for key in ["ts", "pid", "tid"] {
            assert!(
                ev.get(key).and_then(Value::as_u64).is_some(),
                "missing {key}"
            );
        }
        assert!(
            ev.get("name").and_then(Value::as_str).is_some(),
            "missing name"
        );
        let tid = ev.get("tid").and_then(Value::as_u64).unwrap();
        match ph {
            "B" => *open_per_tid.entry(tid).or_default() += 1,
            "E" => {
                let open = open_per_tid.entry(tid).or_default();
                *open -= 1;
                assert!(*open >= 0, "E without matching B on tid {tid}");
            }
            "i" => {
                assert_eq!(ev.get("s").and_then(Value::as_str), Some("t"));
            }
            other => panic!("unexpected phase {other:?}"),
        }
    }
    for (tid, open) in open_per_tid {
        assert_eq!(open, 0, "unbalanced B/E on tid {tid}");
    }
}
