//! Instrumentation must be an observer, not a participant: building the
//! same map with metrics enabled and disabled must produce byte-identical
//! results. A counter that consumed randomness or a span that reordered a
//! stage would show up here as a summary diff.

use itm_core::{MapConfig, MapSummary, TrafficMap};
use itm_measure::{Substrate, SubstrateConfig};

fn build_summary(seed: u64) -> String {
    let s = Substrate::build(SubstrateConfig::small(), seed).unwrap();
    let m = TrafficMap::build(&s, &MapConfig::default()).expect("map build");
    MapSummary::extract(&s, &m).to_json().expect("serializable")
}

#[test]
fn metrics_do_not_perturb_the_map() {
    // Baseline: global registry disabled (the default).
    itm_obs::set_enabled(false);
    let off = build_summary(42);

    // Same seed with every counter, histogram, and span live.
    itm_obs::set_enabled(true);
    itm_obs::reset();
    let on = build_summary(42);

    // The run must actually have recorded something…
    let report = itm_obs::snapshot();
    assert!(
        report.counter_with("probe.queries", &[("technique", "cache_probe")]) > 0,
        "instrumented run recorded no probes"
    );
    assert!(
        report.spans.keys().any(|k| k.starts_with("map.build")),
        "instrumented run recorded no spans"
    );
    itm_obs::set_enabled(false);

    // …without changing a single byte of the map itself.
    assert_eq!(off, on, "metrics collection perturbed the traffic map");
}
