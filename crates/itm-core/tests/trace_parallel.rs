//! Tracing a *parallel, faulted* build must stay deterministic.
//!
//! The executor's worker threads defer their trace emissions into
//! per-shard capture buffers that the caller replays in shard order
//! (`itm_obs::trace::capture_begin` / `replay`), so sequence numbers,
//! virtual timestamps, and campaign parents are assigned on one thread in
//! one deterministic order — whatever the thread count. This test pins
//! the three contracts that scheme exists for, on a heavy-fault build
//! (faults exercise the `ProbeFailed`/`ProbeRetried` emission paths that
//! only run inside workers):
//!
//! 1. the Chrome-trace export is byte-identical across two 8-thread runs
//!    of the same seed;
//! 2. it is also byte-identical to the sequential (1-thread) run;
//! 3. every `ProbeFailed` descends from a campaign: its record carries a
//!    parent root `EventId` (workers inherit the calling thread's
//!    campaign scope through replay, not their own empty one).
//!
//! One test body — the trace log is process-global.

use itm_core::{MapConfig, MapSummary, ParallelExecutor, TrafficMap};
use itm_measure::{Substrate, SubstrateConfig};
use itm_obs::trace::EventKind;
use itm_types::FaultPlan;

/// Build the faulted small map at `threads`, returning the Chrome-trace
/// JSON bytes, the raw snapshot, and the map-summary JSON.
fn traced_build(threads: usize) -> (String, itm_obs::trace::TraceSnapshot, String) {
    let s = Substrate::build(SubstrateConfig::small(), 42).unwrap();
    let cfg = MapConfig {
        faults: FaultPlan::heavy(),
        ..MapConfig::default()
    };
    itm_obs::trace::set_seed(42);
    // A heavy-fault build emits far more than the default ring holds;
    // widen it so campaign roots survive for the parent-join assertions.
    itm_obs::trace::set_capacity(1 << 20);
    itm_obs::trace::reset();
    itm_obs::trace::set_enabled(true);
    let map = TrafficMap::build_with(&s, &cfg, &ParallelExecutor::new(threads)).expect("map build");
    let snap = itm_obs::trace::snapshot();
    itm_obs::trace::set_enabled(false);
    let chrome = serde_json::to_string(&itm_obs::chrome_trace(&snap)).unwrap();
    let summary = MapSummary::extract(&s, &map)
        .to_json()
        .expect("serializable");
    (chrome, snap, summary)
}

#[test]
fn parallel_faulted_trace_is_deterministic_and_failures_have_parents() {
    itm_obs::set_enabled(false);

    let (chrome_a, snap, summary_a) = traced_build(8);
    let (chrome_b, _, _) = traced_build(8);
    let (chrome_seq, _, summary_seq) = traced_build(1);

    // 1. Same seed, same thread count → byte-identical export.
    assert_eq!(chrome_a, chrome_b, "8-thread trace differs run to run");

    // 2. Thread count is invisible: replay sequences worker events on the
    //    calling thread in shard order, so 1 and 8 threads export the
    //    same bytes (and, as always, the same map).
    assert_eq!(chrome_a, chrome_seq, "trace depends on thread count");
    assert_eq!(summary_a, summary_seq, "map depends on thread count");

    // 3. Heavy faults produce failures, and every one is causally rooted:
    //    a ProbeFailed with no parent would be unexplainable evidence.
    let failed: Vec<_> = snap
        .records
        .iter()
        .filter(|r| r.kind == EventKind::ProbeFailed)
        .collect();
    assert!(
        !failed.is_empty(),
        "heavy fault plan produced no ProbeFailed events"
    );
    for r in &failed {
        assert!(
            r.parent.is_some(),
            "ProbeFailed without a campaign parent: {:?}",
            r.subjects
        );
        // The parent must be a real, earlier record in the same causal
        // chain — a campaign root, not a dangling id.
        let parent = snap
            .records
            .iter()
            .find(|p| Some(p.id) == r.parent)
            .unwrap_or_else(|| panic!("dangling parent id {:?}", r.parent));
        assert_eq!(parent.trace, r.trace, "parent in a different trace");
        assert!(parent.id < r.id, "parent sequenced after its child");
        assert_eq!(parent.kind, EventKind::CampaignStarted);
    }
}
