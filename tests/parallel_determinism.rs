//! Determinism under parallelism: the whole point of the sharded
//! executor is that thread count is a pure performance knob. The map —
//! witnessed through its JSON summary, the artifact `repro` publishes —
//! must be byte-identical for any `--threads N`, and across repeat runs
//! at the same seed.

use itm::core::{MapConfig, MapSummary, ParallelExecutor, TrafficMap};
use itm::measure::{Substrate, SubstrateConfig};

fn summary_json(s: &Substrate, exec: &ParallelExecutor) -> String {
    let map = TrafficMap::build_with(s, &MapConfig::default(), exec).expect("map build");
    MapSummary::extract(s, &map)
        .to_json()
        .expect("serializable")
}

#[test]
fn map_summary_is_byte_identical_across_thread_counts() {
    let s = Substrate::build(SubstrateConfig::small(), 2024).expect("valid config");
    let one = summary_json(&s, &ParallelExecutor::new(1));
    let two = summary_json(&s, &ParallelExecutor::new(2));
    let eight = summary_json(&s, &ParallelExecutor::new(8));
    assert!(!one.is_empty());
    assert_eq!(one, two, "1-thread and 2-thread summaries differ");
    assert_eq!(one, eight, "1-thread and 8-thread summaries differ");
}

#[test]
fn build_and_sequential_executor_agree() {
    let s = Substrate::build(SubstrateConfig::small(), 2025).expect("valid config");
    let plain = TrafficMap::build(&s, &MapConfig::default()).expect("map build");
    let plain_json = MapSummary::extract(&s, &plain)
        .to_json()
        .expect("serializable");
    let seq = summary_json(&s, &ParallelExecutor::sequential());
    assert_eq!(plain_json, seq, "build() and build_with(sequential) differ");
}

#[test]
fn repeat_runs_at_same_seed_are_identical() {
    let s = Substrate::build(SubstrateConfig::small(), 2026).expect("valid config");
    let exec = ParallelExecutor::new(8);
    let a = summary_json(&s, &exec);
    let b = summary_json(&s, &exec);
    assert_eq!(a, b, "two 8-thread runs at one seed differ");
}
