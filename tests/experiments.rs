//! Integration tests over the experiment harness: every E1–E14 experiment
//! must run on a small substrate and reproduce the paper's qualitative
//! claims (orderings and directions, not absolute values).

use itm_bench::{ablations, experiments};
use itm_core::{MapConfig, TrafficMap};
use itm_measure::{Substrate, SubstrateConfig};

use std::sync::OnceLock;

/// The map build is the expensive part; all tests share one fixture.
fn setup() -> &'static (Substrate, TrafficMap) {
    static FIXTURE: OnceLock<(Substrate, TrafficMap)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let s = Substrate::build(SubstrateConfig::small(), 2024).expect("valid config");
        let map = TrafficMap::build(&s, &MapConfig::default()).expect("map build");
        (s, map)
    })
}

fn value_of(r: &itm_bench::ExperimentResult, key_part: &str) -> String {
    r.headline
        .iter()
        .find(|(k, _)| k.contains(key_part))
        .unwrap_or_else(|| panic!("{} missing headline {key_part}", r.id))
        .1
        .clone()
}

fn pct_of(r: &itm_bench::ExperimentResult, key_part: &str) -> f64 {
    value_of(r, key_part)
        .trim_end_matches('%')
        .parse()
        .expect("percentage")
}

#[test]
fn all_experiments_produce_csv() {
    let (s, map) = {
        let f = setup();
        (&f.0, &f.1)
    };
    let all = vec![
        experiments::table1(s, map),
        experiments::fig1a(s, map),
        experiments::fig1b(s, map),
        experiments::fig2(s, map),
        experiments::coverage_claims(s, map),
        experiments::ecs(s, map),
        experiments::pathlen(s),
        experiments::anycast(s),
        experiments::pathpred(s),
        experiments::recommend(s),
        experiments::ipid(s),
        experiments::visibility(s),
        experiments::consolidation(s),
        experiments::cachehost(s),
    ];
    assert_eq!(all.len(), 14);
    for r in &all {
        assert!(!r.csv_rows.is_empty(), "{} has no rows", r.id);
        assert!(!r.headline.is_empty(), "{} has no headline", r.id);
        // CSV rows have the same number of fields as the header
        // (quoted commas only appear in table1's prose fields).
        if r.id != "table1" {
            let n = r.csv_header.split(',').count();
            for row in &r.csv_rows {
                assert_eq!(row.split(',').count(), n, "{}: {row}", r.id);
            }
        }
        let text = r.text();
        assert!(text.contains(r.id));
    }
}

#[test]
fn coverage_experiment_reproduces_paper_ordering() {
    let (s, map) = {
        let f = setup();
        (&f.0, &f.1)
    };
    let r = experiments::coverage_claims(s, map);
    let cache = pct_of(&r, "cache probing");
    let root = pct_of(&r, "root logs");
    let union = pct_of(&r, "union");
    let fdr = pct_of(&r, "false discovery");
    assert!(cache > root, "cache {cache} vs root {root}");
    assert!(union >= cache);
    assert!(cache > 75.0);
    assert!(fdr < 2.0);
}

#[test]
fn pathlen_experiment_shows_the_swing() {
    let s = &setup().0;
    let r = experiments::pathlen(s);
    let unweighted = pct_of(&r, "short paths unweighted");
    let weighted = pct_of(&r, "short traffic weighted");
    assert!(
        weighted > unweighted + 20.0,
        "weighted {weighted} vs unweighted {unweighted}"
    );
}

#[test]
fn anycast_experiment_shows_user_route_gap() {
    let s = &setup().0;
    let r = experiments::anycast(s);
    let routes = pct_of(&r, "routes to closest");
    let users = pct_of(&r, "users to optimal");
    assert!(users >= routes, "users {users} vs routes {routes}");
}

#[test]
fn visibility_experiment_hides_peering() {
    let s = &setup().0;
    let r = experiments::visibility(s);
    let peering = pct_of(&r, "peering links invisible");
    let transit = pct_of(&r, "transit links invisible");
    assert!(peering > 50.0);
    assert!(transit < 30.0);
    assert!(peering > transit);
}

#[test]
fn pathpred_improves_with_cloud_vantage() {
    let s = &setup().0;
    let r = experiments::pathpred(s);
    let public = pct_of(&r, "exact on public view");
    let augmented = pct_of(&r, "exact on public+cloud");
    assert!(augmented >= public);
    assert!(public < 60.0, "public view should struggle, got {public}%");
}

#[test]
fn cachehost_flash_raises_hit_rate() {
    let s = &setup().0;
    let r = experiments::cachehost(s);
    let normal = pct_of(&r, "normal hit rate");
    let flash = pct_of(&r, "flash hit rate");
    let che = pct_of(&r, "Che prediction");
    assert!(flash > normal);
    assert!((normal - che).abs() < 10.0, "normal {normal} vs Che {che}");
}

#[test]
fn ablations_run_and_show_expected_directions() {
    let s = &setup().0;
    // D3: more collectors see more (invisible fraction shrinks).
    let d3 = ablations::ab_collectors(s);
    let few = pct_of(&d3, "2 feeders");
    let many = pct_of(&d3, "80 feeders");
    assert!(
        many <= few,
        "more feeders should reveal more: {few} -> {many}"
    );

    // D5: more probing rounds cover at least as much traffic.
    let d5 = ablations::ab_probe_budget(s);
    let lo = pct_of(&d5, "1 rounds/day");
    let hi = pct_of(&d5, "32 rounds/day");
    assert!(hi >= lo, "budget should help: {lo} -> {hi}");

    // D1: losing ECS scope explodes false discoveries.
    let d1 = ablations::ab_ecs_scope(s);
    let ecs_fdr = pct_of(&d1, "ECS false-discovery");
    let pop_fdr = pct_of(&d1, "PoP-wide false-discovery");
    assert!(pop_fdr > ecs_fdr, "pop {pop_fdr} vs ecs {ecs_fdr}");

    // D4: all variants produce rankings.
    let d4 = ablations::ab_recommend_features(s);
    assert_eq!(d4.csv_rows.len(), 7);
}
