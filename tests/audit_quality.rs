//! Quality-audit invariants at the library level: the report is a pure
//! function of `(substrate, map)`, so it must be byte-identical across
//! thread counts; recording claims must not change the published map by
//! a byte; and the verdict accounting `asserted + contradicted + silent
//! == cells` must hold for every technique and every breakdown slice.

use itm::core::{audit, MapConfig, MapSummary, ParallelExecutor, TrafficMap};
use itm::measure::{Substrate, SubstrateConfig};

fn quality_json(s: &Substrate, exec: &ParallelExecutor) -> String {
    let cfg = MapConfig {
        record_claims: true,
        ..MapConfig::default()
    };
    let map = TrafficMap::build_with(s, &cfg, exec).expect("map build");
    serde_json::to_string_pretty(&audit(s, &map).to_json_value()).expect("serializable")
}

#[test]
fn quality_report_is_byte_identical_across_thread_counts() {
    let s = Substrate::build(SubstrateConfig::small(), 2024).expect("valid config");
    let one = quality_json(&s, &ParallelExecutor::new(1));
    let eight = quality_json(&s, &ParallelExecutor::new(8));
    assert!(!one.is_empty());
    assert_eq!(one, eight, "1-thread and 8-thread quality reports differ");
}

#[test]
fn recording_claims_leaves_the_map_summary_untouched() {
    let s = Substrate::build(SubstrateConfig::small(), 2024).expect("valid config");
    let plain = TrafficMap::build(&s, &MapConfig::default()).expect("map build");
    let cfg = MapConfig {
        record_claims: true,
        ..MapConfig::default()
    };
    let recorded = TrafficMap::build(&s, &cfg).expect("map build");
    assert!(plain.claims.is_none());
    assert!(recorded.claims.is_some());
    let a = MapSummary::extract(&s, &plain).to_json().unwrap();
    let b = MapSummary::extract(&s, &recorded).to_json().unwrap();
    assert_eq!(a, b, "claim recording changed the published map summary");
}

#[test]
fn verdict_accounting_balances_for_every_technique_and_slice() {
    let s = Substrate::build(SubstrateConfig::small(), 77).expect("valid config");
    let map = TrafficMap::build(&s, &MapConfig::default()).expect("map build");
    let q = audit(&s, &map);
    assert!(q.is_consistent());
    assert!(!q.techniques.is_empty());
    for (name, t) in &q.techniques {
        let o = &t.overall;
        assert_eq!(
            o.asserted + o.contradicted + o.silent,
            o.cells,
            "accounting broken for {name}"
        );
        assert!(o.cells > 0, "{name} scored nothing");
        // Breakdown slices partition the overall universe where present.
        if !t.by_service_class.is_empty() {
            let sum: u64 = t.by_service_class.values().map(|x| x.cells).sum();
            assert_eq!(sum, o.cells, "{name} class slices don't partition");
        }
        if !t.by_population_tier.is_empty() {
            let sum: u64 = t.by_population_tier.values().map(|x| x.cells).sum();
            assert_eq!(sum, o.cells, "{name} tier slices don't partition");
        }
    }
}

#[test]
fn audit_composes_with_faults() {
    let s = Substrate::build(SubstrateConfig::small(), 91).expect("valid config");
    let cfg = MapConfig {
        faults: itm::types::FaultPlan::profile("heavy").expect("known profile"),
        record_claims: true,
        ..MapConfig::default()
    };
    let clean = TrafficMap::build(&s, &MapConfig::default()).expect("map build");
    let faulted = TrafficMap::build(&s, &cfg).expect("map build");
    let qc = audit(&s, &clean);
    let qf = audit(&s, &faulted);
    assert!(qf.is_consistent());
    // Faults can only silence the ECS campaign, never corrupt it: fewer
    // (or equal) claims, same universe, precision intact.
    let (ec, ef) = (&qc.techniques["ecs"].overall, &qf.techniques["ecs"].overall);
    assert_eq!(ec.cells, ef.cells);
    assert!(
        ef.asserted + ef.contradicted <= ec.asserted + ec.contradicted,
        "faults increased ECS claims"
    );
    assert!(ef.recall() <= ec.recall() + 1e-12, "faults improved recall");
}
