//! Graceful degradation under deterministic fault injection.
//!
//! The fault model's contract, verified end-to-end through the map
//! pipeline: `--faults off` changes nothing (byte-identical summaries,
//! no `"faults"` key), any fixed plan is byte-reproducible across runs
//! and thread counts, raising fault rates only shrinks coverage, and the
//! per-technique accounting (`observed + degraded + lost == issued`)
//! stays exact.

use itm::core::{CoverageReport, MapConfig, MapSummary, ParallelExecutor, TrafficMap};
use itm::measure::{Substrate, SubstrateConfig};
use itm::types::FaultPlan;

fn build_map(s: &Substrate, plan: FaultPlan, exec: &ParallelExecutor) -> TrafficMap {
    let cfg = MapConfig {
        faults: plan,
        ..MapConfig::default()
    };
    TrafficMap::build_with(s, &cfg, exec).expect("map build")
}

fn summary_json(s: &Substrate, plan: FaultPlan, exec: &ParallelExecutor) -> String {
    MapSummary::extract(s, &build_map(s, plan, exec))
        .to_json()
        .expect("serializable")
}

/// A plan that fails `rate` of attempts, with the retry policy held
/// fixed so fates are per-probe monotone in `rate` (the fate of probe
/// `(a, b, c)` depends only on which of its per-attempt draws fall under
/// the failure threshold — same draws, higher threshold, superset of
/// failures).
fn rate_plan(rate: f64) -> FaultPlan {
    FaultPlan {
        loss: rate * 0.6,
        timeout: rate * 0.25,
        refusal: rate * 0.15,
        churn: rate,
        max_retries: 2,
        backoff_base_secs: 1,
        backoff_cap_secs: 30,
    }
}

#[test]
fn faults_off_is_byte_identical_to_the_clean_pipeline() {
    let s = Substrate::build(SubstrateConfig::small(), 2024).expect("valid config");
    let exec = ParallelExecutor::new(4);
    let clean = {
        let map = TrafficMap::build_with(&s, &MapConfig::default(), &exec).expect("map build");
        MapSummary::extract(&s, &map)
            .to_json()
            .expect("serializable")
    };
    let off = summary_json(&s, FaultPlan::off(), &exec);
    assert_eq!(clean, off, "--faults off perturbed the clean pipeline");
    assert!(
        !off.contains("\"faults\""),
        "clean summary must omit the faults key entirely"
    );

    // And the in-memory report is empty too, so downstream scoring sees
    // a clean build as clean.
    let map = build_map(&s, FaultPlan::off(), &exec);
    assert!(map.fault_report.is_empty());
    let report = CoverageReport::score(&s, &map, None);
    assert_eq!(report.total_lost(), 0);
    assert_eq!(report.total_degraded(), 0);
}

#[test]
fn fixed_fault_profile_is_deterministic_across_runs_and_threads() {
    let s = Substrate::build(SubstrateConfig::small(), 2027).expect("valid config");
    let one = summary_json(&s, FaultPlan::light(), &ParallelExecutor::new(1));
    let eight = summary_json(&s, FaultPlan::light(), &ParallelExecutor::new(8));
    let eight_again = summary_json(&s, FaultPlan::light(), &ParallelExecutor::new(8));
    assert_eq!(one, eight, "light-profile map differs across thread counts");
    assert_eq!(eight, eight_again, "light-profile map differs across runs");
    assert!(
        one.contains("\"faults\""),
        "faulted summary must carry the accounting"
    );

    // The accounting survives the JSON round trip exactly.
    let parsed = MapSummary::from_json(&one).expect("parseable");
    let map = build_map(&s, FaultPlan::light(), &ParallelExecutor::new(8));
    assert_eq!(parsed.faults, map.fault_report);
}

#[test]
fn coverage_shrinks_monotonically_as_fault_rates_rise() {
    let s = Substrate::build(SubstrateConfig::small(), 2028).expect("valid config");
    let exec = ParallelExecutor::new(4);
    let maps: Vec<TrafficMap> = [0.02, 0.10, 0.30]
        .iter()
        .map(|&r| build_map(&s, rate_plan(r), &exec))
        .collect();

    for pair in maps.windows(2) {
        let (lo, hi) = (&pair[0], &pair[1]);
        // Cache probing: every prefix discovered under the harsher plan
        // was discovered under the milder one (probe fates are per-probe
        // monotone, so the set of surviving hits only shrinks).
        assert!(
            hi.cache_result
                .discovered
                .is_subset(&lo.cache_result.discovered),
            "harsher faults discovered new prefixes"
        );
        assert!(hi.user_prefixes.is_subset(&lo.user_prefixes));
        assert!(hi.user_mapping.mapping.len() <= lo.user_mapping.mapping.len());
        // And the loss accounting itself is monotone.
        let lost = |m: &TrafficMap| -> u64 { m.fault_report.values().map(|st| st.lost).sum() };
        assert!(lost(hi) >= lost(lo), "harsher faults lost fewer probes");
    }

    // The harshest plan still lost real probes (the test has teeth).
    let lost: u64 = maps[2].fault_report.values().map(|st| st.lost).sum();
    assert!(lost > 0, "30% fault rate lost nothing");
}

#[test]
fn fault_accounting_is_exact() {
    let s = Substrate::build(SubstrateConfig::small(), 2029).expect("valid config");
    let exec = ParallelExecutor::new(4);
    let light = build_map(&s, FaultPlan::light(), &exec);
    let heavy = build_map(&s, FaultPlan::heavy(), &exec);

    // Cache probing's issued count is exactly the campaign geometry:
    // every (round, prefix, domain) cell, faults or no faults.
    let expected = u64::from(light.cache_result.probes_per_prefix) * s.topo.prefixes.len() as u64;
    assert_eq!(light.cache_result.fault_stats.issued(), expected);
    assert_eq!(heavy.cache_result.fault_stats.issued(), expected);

    for (name, st) in &light.fault_report {
        // observed + degraded + lost covers every issued probe…
        assert_eq!(
            st.observed + st.degraded + st.lost,
            st.issued(),
            "{name}: accounting identity broken"
        );
        assert!(st.issued() > 0, "{name}: no probes issued");
        // …and for campaigns whose probe set is fixed by the substrate,
        // the issued total is independent of the fault plan. (sni_scan
        // is excluded: its candidates come from the TLS sweep's hits, so
        // its workload legitimately shrinks under harsher faults.)
        let heavy_st = heavy
            .fault_report
            .get(name)
            .unwrap_or_else(|| panic!("{name}: missing from heavy report"));
        if name != "sni_scan" {
            assert_eq!(
                st.issued(),
                heavy_st.issued(),
                "{name}: issued count varied with the fault plan"
            );
        }
        // Degraded probes are the ones that needed retries.
        if st.degraded > 0 {
            assert!(
                st.retries >= st.degraded,
                "{name}: degraded without retries"
            );
        }
    }
    assert_eq!(light.fault_report.len(), heavy.fault_report.len());
}
