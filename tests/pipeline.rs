//! Cross-crate integration tests: build a full synthetic Internet, run the
//! complete measurement pipeline, and check end-to-end invariants that no
//! single crate can check alone.

use itm::core::{coverage, CoverageReport, MapConfig, TrafficMap};
use itm::measure::{Substrate, SubstrateConfig};
use itm::routing::RoutingTree;
use itm::types::Asn;
use std::collections::HashSet;

fn substrate(seed: u64) -> Substrate {
    Substrate::build(SubstrateConfig::small(), seed).expect("valid config")
}

/// Most tests only need *a* built map; share one (the map build dominates
/// test time). Tests exercising determinism or specific seeds build their
/// own.
fn shared() -> &'static (Substrate, TrafficMap) {
    static FIXTURE: std::sync::OnceLock<(Substrate, TrafficMap)> = std::sync::OnceLock::new();
    FIXTURE.get_or_init(|| {
        let s = substrate(1001);
        let map = TrafficMap::build(&s, &MapConfig::default()).expect("map build");
        (s, map)
    })
}

#[test]
fn full_pipeline_end_to_end() {
    let (s, map) = shared();
    let report = CoverageReport::score(s, map, None);

    // The paper's coverage ordering and magnitudes (shape, not absolute).
    assert!(report.cache_probe_traffic > 0.75);
    assert!(report.root_logs_traffic > 0.2);
    assert!(report.union_traffic >= report.cache_probe_traffic);
    assert!(report.false_discovery_rate < 0.02);

    // Table 1 rows exist for all five components.
    let t1 = coverage::table1(s, map, &report);
    assert_eq!(t1.len(), 5);
}

#[test]
fn map_is_reproducible_across_runs() {
    let s1 = substrate(1002);
    let s2 = substrate(1002);
    let m1 = TrafficMap::build(&s1, &MapConfig::default()).expect("map build");
    let m2 = TrafficMap::build(&s2, &MapConfig::default()).expect("map build");
    assert_eq!(m1.user_prefixes, m2.user_prefixes);
    assert_eq!(m1.known_server_count(), m2.known_server_count());
    assert_eq!(m1.user_mapping.mapping.len(), m2.user_mapping.mapping.len());
    let r1 = CoverageReport::score(&s1, &m1, None);
    let r2 = CoverageReport::score(&s2, &m2, None);
    assert_eq!(r1.cache_probe_traffic, r2.cache_probe_traffic);
    assert_eq!(r1.union_traffic, r2.union_traffic);
}

#[test]
fn measured_mapping_agrees_with_dns_ground_truth() {
    // The ECS mapping measured through the open resolver must equal the
    // redirection the authoritative DNS would compute directly — two
    // different code paths through two crates.
    let (s, map) = shared();
    let auth = s.authoritative();
    let resolver = s.open_resolver().expect("open resolver");
    let mut checked = 0;
    for c in map.user_mapping.mapping.iter().take(200) {
        let rec = s.topo.prefixes.get(c.prefix);
        let pop_city = resolver.pops()[resolver.pop_of(c.prefix).index()].city;
        let direct = auth.resolve(c.service, pop_city, Some(rec.net));
        assert_eq!(direct.addr, c.addr, "{} × {}", rec.net, c.service);
        checked += 1;
    }
    assert!(checked > 50);
}

#[test]
fn tls_scan_and_dns_mapping_see_the_same_servers() {
    // Addresses learned from the DNS mapping must be known to the TLS
    // layer, and hypergiant front-ends must present covering certs.
    let (s, map) = shared();
    let mut checked = 0;
    for c in map.user_mapping.mapping.iter().take(100) {
        let domain = &s.catalog.get(c.service).domain;
        let cert = s
            .tls
            .handshake(c.addr, Some(domain))
            .expect("mapped server must speak TLS");
        assert!(
            cert.covers(domain),
            "{} cert does not cover {domain}",
            c.addr
        );
        checked += 1;
    }
    assert!(checked > 20);
}

#[test]
fn routes_exist_between_all_users_and_all_services() {
    // The ground-truth Internet is fully connected at the BGP level:
    // every user AS reaches every serving AS.
    let s = substrate(1005);
    let view = s.full_view();
    let mut serving: HashSet<Asn> = HashSet::new();
    for svc in &s.catalog.services {
        serving.insert(svc.owner.serving_as());
    }
    for &dst in &serving {
        let tree = RoutingTree::compute(&view, dst);
        assert_eq!(
            tree.reachable_count(),
            s.topo.n_ases(),
            "{dst} not fully reachable"
        );
    }
}

#[test]
fn offnet_detection_matches_topology_ground_truth() {
    let (s, map) = shared();
    // Every detected off-net exists in the topology's deployment table.
    for f in &map.offnet_servers {
        assert!(
            s.topo.offnets.find(f.hypergiant, f.host).is_some(),
            "phantom off-net detection {f:?}"
        );
    }
    // Detection covers most deployments of hypergiants with services.
    let serving_hgs: HashSet<Asn> = s
        .catalog
        .services
        .iter()
        .filter_map(|svc| match svc.owner {
            itm::traffic::ServiceOwner::Hypergiant(hg) => Some(hg),
            _ => None,
        })
        .collect();
    let detected: HashSet<(Asn, Asn)> = map
        .offnet_servers
        .iter()
        .map(|f| (f.hypergiant, f.host))
        .collect();
    let mut total = 0;
    let mut found = 0;
    for d in s.topo.offnets.iter() {
        if serving_hgs.contains(&d.hypergiant) {
            total += 1;
            if detected.contains(&(d.hypergiant, d.host)) {
                found += 1;
            }
        }
    }
    assert!(total > 0);
    assert!(
        found as f64 / total as f64 > 0.85,
        "off-net recall {found}/{total}"
    );
}

#[test]
fn activity_component_is_consistent_with_user_component() {
    // ASes with strong fused activity must be ASes the user-discovery
    // component found — the map's components cannot contradict each other.
    let (s, map) = shared();
    let discovered = map.cache_result.discovered_ases(s);
    let mut strong: Vec<Asn> = map
        .activity
        .iter()
        .filter(|(_, e)| e.fused > 0.5)
        .map(|(&a, _)| a)
        .collect();
    strong.sort_unstable();
    for a in strong {
        let class = s.topo.as_info(a).class;
        if class.is_eyeball() {
            assert!(
                discovered.contains(&a),
                "{a} very active but never discovered"
            );
        }
    }
}
