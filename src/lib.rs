//! # itm — an Internet Traffic Map toolkit
//!
//! A from-scratch Rust reproduction of *"Towards a traffic map of the
//! Internet: Connecting the dots between popular services and users"*
//! (Koch et al., HotNets '21). The paper envisions a map with three
//! components — where users are and how active they are, where popular
//! services are hosted and which hosts serve which users, and what routes
//! connect them — built from public measurements only.
//!
//! The real measurements need Google Public DNS, root-server logs, and
//! Internet-wide scans; this workspace substitutes a complete generative
//! model of the Internet (the *substrate*) with full ground truth, then
//! runs every measurement technique the paper sketches against it and
//! scores the results exactly the way the paper does. See `DESIGN.md` for
//! the substitution table and the experiment index, and `EXPERIMENTS.md`
//! for paper-vs-measured results.
//!
//! ## Crate tour
//!
//! * [`types`] — ids, prefixes, geography, time, stats, seeds.
//! * [`topology`] — the Internet generator (ASes, peering, off-nets).
//! * [`routing`] — valley-free BGP, anycast, collectors, traceroute, IP ID.
//! * [`traffic`] — users, services, the ground-truth traffic matrix.
//! * [`dns`] — resolvers, ECS authoritative DNS, the probeable open
//!   resolver, Chromium probes, root logs.
//! * [`tls`] — certificates, scanning, off-net detection.
//! * [`measure`] — the §3 measurement techniques.
//! * [`core`] — the assembled [`core::TrafficMap`] and every analysis.
//!
//! ## Quickstart
//!
//! ```
//! use itm::measure::{Substrate, SubstrateConfig};
//! use itm::core::{MapConfig, TrafficMap, CoverageReport};
//!
//! // A small synthetic Internet (≈120 ASes), fully deterministic.
//! let s = Substrate::build(SubstrateConfig::small(), 42).unwrap();
//! // Run the full measurement pipeline and assemble the map.
//! let map = TrafficMap::build(&s, &MapConfig::default()).expect("map build");
//! // Score it the way the paper scores its techniques.
//! let report = CoverageReport::score(&s, &map, None);
//! assert!(report.cache_probe_traffic > report.root_logs_traffic);
//! ```

pub use itm_core as core;
pub use itm_dns as dns;
pub use itm_measure as measure;
pub use itm_routing as routing;
pub use itm_tls as tls;
pub use itm_topology as topology;
pub use itm_traffic as traffic;
pub use itm_types as types;
