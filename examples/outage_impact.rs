//! Outage impact analysis — the paper's §2.1 flagship use case.
//!
//! "To assess the impact of an outage in a ⟨region, AS⟩, the map can tell
//! us which popular services are affected, which prefixes are affected
//! for those services, what fraction of traffic or users are affected,
//! and where the prefixes may be routed instead."
//!
//! ```sh
//! cargo run --release --example outage_impact
//! ```

use itm::core::{MapConfig, OutageImpact, OutageScenario, TrafficMap};
use itm::measure::{Substrate, SubstrateConfig};

fn main() {
    let s = Substrate::build(SubstrateConfig::small(), 7).expect("valid config");
    let map = TrafficMap::build(&s, &MapConfig::default()).expect("map build");

    // Scenario 1: the largest hypergiant's own network goes dark.
    let hg = s.topo.hypergiants()[0];
    banner(&format!(
        "scenario: {hg} (largest hypergiant) fails entirely"
    ));
    report(
        &s,
        OutageImpact::assess(&s, &map, OutageScenario::WholeAs(hg)).expect("assess outage"),
    );

    // Scenario 2: the same AS fails in one country only.
    let country = s.topo.world.countries[0].country;
    banner(&format!("scenario: {hg} fails in {country} only"));
    report(
        &s,
        OutageImpact::assess(&s, &map, OutageScenario::RegionAs(hg, country))
            .expect("assess outage"),
    );

    // Scenario 3: the biggest eyeball ISP fails — its users lose their
    // off-net caches, but the map shows traffic shifting on-net.
    let eyeball = s
        .topo
        .ases_of_class(itm::topology::AsClass::Eyeball)
        .max_by(|a, b| {
            s.users
                .subscribers(a.asn)
                .partial_cmp(&s.users.subscribers(b.asn))
                .unwrap()
        })
        .unwrap()
        .asn;
    banner(&format!("scenario: {eyeball} (largest eyeball ISP) fails"));
    report(
        &s,
        OutageImpact::assess(&s, &map, OutageScenario::WholeAs(eyeball)).expect("assess outage"),
    );
}

fn banner(msg: &str) {
    println!("\n=== {msg} ===");
}

fn report(s: &Substrate, impact: OutageImpact) {
    println!(
        "affected services:        {}",
        impact.affected_services.len()
    );
    println!("affected (svc,prefix):    {}", impact.affected_cells.len());
    println!(
        "users affected (map est): {:.0}   (truth: {:.0})",
        impact.estimated_users_affected, impact.true_users_affected
    );
    println!(
        "traffic affected:         {:.2}% of all popular-service traffic",
        100.0 * impact.traffic_share(s)
    );
    let rerouted = impact.reroutes.values().filter(|r| r.is_some()).count();
    let stranded = impact.reroutes.values().filter(|r| r.is_none()).count();
    println!("reroutable cells:         {rerouted}   (stranded: {stranded})");
    // Show a few example reroutes.
    for (k, v) in impact.reroutes.iter().take(3) {
        let (svc, p) = k;
        let domain = &s.catalog.get(*svc).domain;
        let net = s.topo.prefixes.get(*p).net;
        match v {
            Some(addr) => println!("  e.g. {net} × {domain} → now served from {addr}"),
            None => println!("  e.g. {net} × {domain} → NO surviving front-end"),
        }
    }
}
