//! The paper's methodological demonstration: unweighted CDFs lie.
//!
//! Reproduces §2.1's two examples — the path-length swing ("only 2% of
//! Internet paths were two ASes long [but] 73% of Google queries come from
//! ASes that either host a Google server or connect directly") and the
//! anycast optimality gap ("only 31% of routes go to the closest site,
//! [but] 60% of users are mapped to the optimal site").
//!
//! ```sh
//! cargo run --release --example weighted_cdf
//! ```

use itm::core::{AnycastAnalysis, PathLengthAnalysis};
use itm::measure::{Substrate, SubstrateConfig};
use itm::types::SeedDomain;

fn main() {
    let s = Substrate::build(SubstrateConfig::small(), 11).expect("valid config");
    let view = s.full_view();

    println!("=== E5: path lengths, unweighted vs traffic-weighted ===");
    let a = PathLengthAnalysis::run(&s, &view);
    println!(
        "paths <= 1 AS hop, unweighted:       {:5.1}%   (paper analogue: ~2%)",
        100.0 * a.short_paths_unweighted
    );
    println!(
        "traffic <= 1 AS hop from provider:   {:5.1}%   (paper analogue: 73%)",
        100.0 * a.short_traffic_weighted
    );
    println!("\n  len   unweighted   weighted");
    for len in 0..=6 {
        println!(
            "  {:>3}   {:>9.1}%   {:>7.1}%",
            len,
            100.0 * a.unweighted.fraction_at(len as f64),
            100.0 * a.weighted.fraction_at(len as f64)
        );
    }

    println!("\n=== E6: anycast optimality, routes vs users ===");
    let b = AnycastAnalysis::run(&s, &view, 0.15, &SeedDomain::new(11));
    println!(
        "routes landing on closest site:      {:5.1}%   (paper: 31%)",
        100.0 * b.routes_to_closest
    );
    println!(
        "users landing on optimal site:       {:5.1}%   (paper: 60%)",
        100.0 * b.users_to_optimal
    );
    println!(
        "users within 500 km of optimal:      {:5.1}%   (paper [38]: 80%)",
        100.0 * b.users_within_500km
    );
    println!("\n  excess km   user share");
    for km in [0.0, 100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0] {
        println!(
            "  {:>8}   {:>9.1}%",
            km,
            100.0 * b.excess_distance.fraction_at(km)
        );
    }
    println!("\nSame routes, same sites — the weighting changes the story.");
}
