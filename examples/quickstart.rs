//! Quickstart: build a synthetic Internet, run the full measurement
//! pipeline, assemble the Internet Traffic Map, and score it.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use itm::core::{CoverageReport, MapConfig, TrafficMap};
use itm::measure::{Substrate, SubstrateConfig};

fn main() {
    // A small, fully deterministic Internet: ~120 ASes, 6 countries,
    // 3 hypergiants, 2 clouds, 30 popular services.
    let seed = 42;
    let s = Substrate::build(SubstrateConfig::small(), seed).expect("valid config");
    println!("== substrate ==");
    println!("ASes:            {}", s.topo.n_ases());
    println!("links:           {}", s.topo.links.len());
    println!("routed /24s:     {}", s.topo.prefixes.len());
    println!("off-net caches:  {}", s.topo.offnets.len());
    println!("services:        {}", s.catalog.len());
    println!("Internet users:  {:.0}", s.users.total());
    println!("total traffic:   {}", s.traffic.grand_total());

    // Run every §3 technique and assemble the map.
    let map = TrafficMap::build(&s, &MapConfig::default()).expect("map build");
    println!("\n== Internet Traffic Map ==");
    println!("user prefixes found:  {}", map.user_prefixes.len());
    println!("ASes with activity:   {}", map.activity.len());
    println!("serving addresses:    {}", map.known_server_count());
    println!(
        "off-net hosts found:  {}",
        map.offnet_servers
            .iter()
            .map(|f| f.host)
            .collect::<std::collections::HashSet<_>>()
            .len()
    );
    println!("mapping cells:        {}", map.user_mapping.mapping.len());

    // Score against ground truth, the way the paper scores against
    // Microsoft CDN logs (§3.1.2).
    let report = CoverageReport::score(&s, &map, None);
    println!("\n== coverage vs ground truth (paper targets in parens) ==");
    println!(
        "cache probing traffic coverage: {:5.1}%   (≈95%)",
        100.0 * report.cache_probe_traffic
    );
    println!(
        "root-log traffic coverage:      {:5.1}%   (≈60%)",
        100.0 * report.root_logs_traffic
    );
    println!(
        "union traffic coverage:         {:5.1}%   (≈99%)",
        100.0 * report.union_traffic
    );
    println!(
        "false-discovery rate:           {:5.2}%   (<1%)",
        100.0 * report.false_discovery_rate
    );
    println!(
        "APNIC-user coverage:            {:5.1}%   (≈98%)",
        100.0 * report.apnic_user_share
    );
}
