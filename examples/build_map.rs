//! Build the Internet Traffic Map on a default-size Internet (≈2,000
//! ASes) and emit a machine-readable summary.
//!
//! ```sh
//! cargo run --release --example build_map [seed]
//! ```
//!
//! Writes `results/map_summary.json` and prints the reproduced Table 1.

use itm::core::{coverage, CoverageReport, MapConfig, TrafficMap};
use itm::measure::{Substrate, SubstrateConfig};
use std::time::Instant;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(42);

    let t0 = Instant::now();
    let s = Substrate::build(SubstrateConfig::default(), seed).expect("valid config");
    println!(
        "substrate built in {:.1?}: {} ASes, {} links, {} /24s, {} services",
        t0.elapsed(),
        s.topo.n_ases(),
        s.topo.links.len(),
        s.topo.prefixes.len(),
        s.catalog.len()
    );

    let t1 = Instant::now();
    let map = TrafficMap::build(&s, &MapConfig::default()).expect("map build");
    println!("map built in {:.1?}", t1.elapsed());

    let report = CoverageReport::score(&s, &map, None);
    let table = coverage::table1(&s, &map, &report);

    println!("\n=== Table 1 (reproduced) ===");
    for row in &table {
        println!("\n[{}]", row.component);
        println!("  temporal precision: {}", row.temporal);
        println!("  network precision:  {}", row.network_precision);
        println!("  coverage:           {}", row.coverage);
    }

    // Machine-readable summary.
    let summary = serde_json::json!({
        "seed": seed,
        "ases": s.topo.n_ases(),
        "links": s.topo.links.len(),
        "prefixes": s.topo.prefixes.len(),
        "services": s.catalog.len(),
        "coverage": {
            "cache_probe_traffic": report.cache_probe_traffic,
            "root_logs_traffic": report.root_logs_traffic,
            "union_traffic": report.union_traffic,
            "false_discovery_rate": report.false_discovery_rate,
            "apnic_user_share": report.apnic_user_share,
        },
        "map": {
            "user_prefixes": map.user_prefixes.len(),
            "activity_ases": map.activity.len(),
            "serving_addresses": map.known_server_count(),
            "mapping_cells": map.user_mapping.mapping.len(),
        },
        "table1": (table
            .iter()
            .map(|row| {
                serde_json::json!({
                    "component": (row.component.clone()),
                    "temporal": (row.temporal.clone()),
                    "network_precision": (row.network_precision.clone()),
                    "coverage": (row.coverage.clone()),
                })
            })
            .collect::<Vec<_>>()),
    });
    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write(
        "results/map_summary.json",
        serde_json::to_string_pretty(&summary).expect("serializable"),
    )
    .expect("write summary");
    println!("\nwrote results/map_summary.json");
}
