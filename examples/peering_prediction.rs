//! The §3.3.3 peering recommender: predicting invisible links.
//!
//! "Given two networks are both present in a facility, it may be possible
//! to develop techniques to predict how likely it is that two networks
//! interconnect at that facility … one could formulate the problem as a
//! recommendation system."
//!
//! ```sh
//! cargo run --release --example peering_prediction
//! ```

use itm::core::recommend::RecommenderWeights;
use itm::core::{PeeringRecommender, RecommendationEval};
use itm::measure::{Substrate, SubstrateConfig};
use itm::routing::CollectorSet;

fn main() {
    let s = Substrate::build(SubstrateConfig::small(), 13).expect("valid config");

    // What the public sees.
    let collectors = CollectorSet::typical(&s.topo, &s.seeds);
    let (public, visibility) = collectors.public_view(&s.topo);
    println!("=== visibility (E12) ===");
    for (label, total, vis) in &visibility.by_class {
        if *total > 0 {
            println!(
                "{label:>16}: {vis:>5}/{total:<5} visible ({:.0}% invisible)",
                100.0 * (1.0 - *vis as f64 / *total as f64)
            );
        }
    }

    // Recommend links for the invisible remainder.
    let rec = PeeringRecommender::new(&s, &public, RecommenderWeights::default());
    let recs = rec.recommend().expect("finite recommendation scores");
    let eval = RecommendationEval::evaluate(&s, &recs);
    println!("\n=== recommendation quality (E10) ===");
    println!("candidate co-located pairs: {}", eval.candidates);
    println!("real invisible links among them: {}", eval.positives);
    println!("base rate (random ranking): {:.3}", eval.base_rate);
    println!("\n  k     precision@k   recall@k");
    for (k, p, r) in &eval.at_k {
        println!("  {k:<6} {p:>9.3}   {r:>8.3}");
    }

    println!("\ntop 10 recommendations (✓ = really peer):");
    let truth: std::collections::HashSet<_> = s.topo.links.iter().map(|l| l.key()).collect();
    for r in recs.iter().take(10) {
        let (a, b) = r.pair;
        let mark = if truth.contains(&r.pair) {
            "✓"
        } else {
            "✗"
        };
        let (ca, cb) = (
            s.topo.as_info(a).class.label(),
            s.topo.as_info(b).class.label(),
        );
        println!("  {mark} {a} ({ca}) — {b} ({cb})   score {:.3}", r.score);
    }
}
